"""Replay a dynamic trace, maintaining per-register BVR/EBR/D/FS state.

:class:`RegisterStateTracker` is the software twin of the hardware
sidecar arrays: it walks one warp's trace in order, updates each
destination register's :class:`~repro.compression.encoding.RegisterEncoding`
exactly as the Figure 3/Figure 7 comparison logic would, and emits a
:class:`ClassifiedEvent` per dynamic instruction carrying everything the
architecture views, figures and power model need.

The state evolution is architecture-independent (the enc bits are
produced whether or not a given architecture uses them); which
capabilities are *acted on* is decided later by
:mod:`repro.scalar.architectures`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.encoding import SCALAR_PREFIX, RegisterEncoding
from repro.compression.gscalar import common_prefix_bytes
from repro.compression.half import compress_halves
from repro.errors import TraceError
from repro.isa.opcodes import OpCategory
from repro.obs.instrument import record_classified_warp
from repro.obs.telemetry import get_telemetry
from repro.scalar.eligibility import (
    ScalarClass,
    SourceRead,
    classify_instruction,
    classify_source_read,
)
from repro.simt.grid import int_to_mask
from repro.simt.trace import KernelTrace, TraceEvent, WarpTrace

#: Half-register granularity in lanes.  The paper fixes this at 16 even
#: for 64-thread warps ("quarter-scalar", Figure 10).
HALF_GRANULARITY = 16


@dataclass(frozen=True, slots=True)
class ClassifiedEvent:
    """One dynamic instruction with its scalar/compression analysis."""

    event: TraceEvent
    scalar_class: ScalarClass
    divergent: bool
    sources: tuple[SourceRead, ...]
    dst_encoding: RegisterEncoding | None
    dst_encoding_before: RegisterEncoding | None
    needs_decompress_move: bool
    lo_half_scalar_exec: bool
    hi_half_scalar_exec: bool

    @property
    def category(self) -> OpCategory:
        return self.event.category


@dataclass
class TrackerStatistics:
    """Aggregate counters over one tracked trace."""

    total_instructions: int = 0
    divergent_instructions: int = 0
    decompress_moves: int = 0
    class_counts: dict[ScalarClass, int] = field(
        default_factory=lambda: {c: 0 for c in ScalarClass}
    )

    def fraction(self, scalar_class: ScalarClass) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.class_counts[scalar_class] / self.total_instructions

    @property
    def eligible_fraction(self) -> float:
        """Fraction of instructions in any scalar bucket."""
        if self.total_instructions == 0:
            return 0.0
        eligible = self.total_instructions - self.class_counts[ScalarClass.NOT_ELIGIBLE]
        return eligible / self.total_instructions


class RegisterStateTracker:
    """Per-warp sidecar-state machine (one hardware EBR/BVR set)."""

    def __init__(self, num_registers: int, warp_size: int):
        if num_registers < 0:
            raise TraceError(f"num_registers must be >= 0, got {num_registers}")
        self.warp_size = warp_size
        self.full_mask = (1 << warp_size) - 1
        self._half_granularity = min(HALF_GRANULARITY, max(1, warp_size // 2))
        self._state: dict[int, RegisterEncoding] = {}
        self.num_registers = num_registers

    def state_of(self, register: int) -> RegisterEncoding:
        """Current sidecar state of a register (uncompressed initially)."""
        return self._state.get(register, RegisterEncoding.uncompressed())

    # ------------------------------------------------------------------
    def classify(self, event: TraceEvent) -> ClassifiedEvent:
        """Classify one event and update the destination's state."""
        divergent = event.active_mask != self.full_mask

        sources = []
        for register in event.src_regs:
            read = classify_source_read(
                self.state_of(register), divergent, event.active_mask
            )
            sources.append(
                SourceRead(
                    register=register,
                    encoding=read.encoding,
                    scalar_for_read=read.scalar_for_read,
                    lo_scalar=read.lo_scalar,
                    hi_scalar=read.hi_scalar,
                )
            )
        sources_tuple = tuple(sources)

        scalar_class, lo_ok, hi_ok = classify_instruction(
            event.category, divergent, sources_tuple, event.varying_special_src
        )

        dst_before: RegisterEncoding | None = None
        dst_after: RegisterEncoding | None = None
        needs_move = False
        if event.dst is not None and event.dst_values is not None:
            dst_before = self.state_of(event.dst)
            if divergent:
                # §3.3: a divergent write to a compressed register needs
                # the special decompress-move first.
                needs_move = not dst_before.divergent and dst_before.enc > 0
                dst_after = self._divergent_write_state(event)
            else:
                dst_after = self._full_write_state(event)
            self._state[event.dst] = dst_after

        return ClassifiedEvent(
            event=event,
            scalar_class=scalar_class,
            divergent=divergent,
            sources=sources_tuple,
            dst_encoding=dst_after,
            dst_encoding_before=dst_before,
            needs_decompress_move=needs_move,
            lo_half_scalar_exec=lo_ok if scalar_class is ScalarClass.HALF_SCALAR else False,
            hi_half_scalar_exec=hi_ok if scalar_class is ScalarClass.HALF_SCALAR else False,
        )

    # ------------------------------------------------------------------
    def _full_write_state(self, event: TraceEvent) -> RegisterEncoding:
        values = event.dst_values
        assert values is not None
        enc = common_prefix_bytes(values)
        halves = compress_halves(values, granularity=self._half_granularity)
        return RegisterEncoding(
            enc=enc,
            base=int(values[0]),
            divergent=False,
            enc_lo=halves.enc_lo,
            enc_hi=halves.enc_hi,
            base_lo=halves.base_lo,
            base_hi=halves.base_hi,
            full_scalar=halves.full_scalar,
        )

    def _divergent_write_state(self, event: TraceEvent) -> RegisterEncoding:
        values = event.dst_values
        assert values is not None
        mask = int_to_mask(event.active_mask, self.warp_size)
        enc = common_prefix_bytes(values, mask)
        # §4.2: the BVR stores the writer's active mask, not a base value;
        # the half-register pairs are not maintained for divergent writes.
        return RegisterEncoding(enc=enc, base=event.active_mask, divergent=True)


def classify_trace(trace: KernelTrace, num_registers: int) -> list[list[ClassifiedEvent]]:
    """Classify every warp of a kernel trace (fresh tracker per warp)."""
    telemetry = get_telemetry()
    classified: list[list[ClassifiedEvent]] = []
    with telemetry.span(
        f"classify:{trace.kernel_name}", cat="kernel", kernel=trace.kernel_name
    ):
        for warp in trace.warps:
            tracker = RegisterStateTracker(num_registers, trace.warp_size)
            events = [tracker.classify(e) for e in warp.events]
            classified.append(events)
            if telemetry.enabled:
                record_classified_warp(telemetry, events, trace.warp_size)
    return classified


def classify_warp(warp: WarpTrace, num_registers: int) -> list[ClassifiedEvent]:
    """Classify a single warp's trace."""
    tracker = RegisterStateTracker(num_registers, warp.warp_size)
    return [tracker.classify(e) for e in warp.events]


def trace_statistics(classified: list[list[ClassifiedEvent]]) -> TrackerStatistics:
    """Aggregate classification counters over all warps."""
    stats = TrackerStatistics()
    for warp_events in classified:
        for item in warp_events:
            stats.total_instructions += 1
            if item.divergent:
                stats.divergent_instructions += 1
            if item.needs_decompress_move:
                stats.decompress_moves += 1
            stats.class_counts[item.scalar_class] += 1
    return stats
