"""Unit tests for the functional memory image."""

import numpy as np
import pytest

from repro.errors import MemoryError_
from repro.simt.memory_state import MemoryImage


class TestArrayBinding:
    def test_uint32_round_trip(self):
        memory = MemoryImage()
        data = np.arange(10, dtype=np.uint32)
        memory.bind_array(0x100, data)
        assert np.array_equal(memory.read_array(0x100, 10), data)

    def test_float32_bit_pattern_round_trip(self):
        memory = MemoryImage()
        data = np.array([1.5, -2.25, 0.0], dtype=np.float32)
        memory.bind_array(0x200, data)
        assert np.array_equal(memory.read_array(0x200, 3, dtype=np.float32), data)

    def test_unaligned_base_rejected(self):
        memory = MemoryImage()
        with pytest.raises(MemoryError_):
            memory.bind_array(0x101, np.zeros(1, dtype=np.uint32))

    def test_unsupported_dtype_rejected(self):
        memory = MemoryImage()
        with pytest.raises(MemoryError_):
            memory.bind_array(0x100, np.zeros(4, dtype=np.float64))


class TestVectorAccess:
    def test_masked_load(self):
        memory = MemoryImage()
        memory.bind_array(0, np.array([10, 20, 30, 40], dtype=np.uint32))
        addrs = np.array([0, 4, 8, 12], dtype=np.uint32)
        mask = np.array([True, False, True, False])
        values = memory.load(addrs, mask)
        assert values[0] == 10
        assert values[2] == 30
        assert values[1] == 0  # inactive lane reads as zero

    def test_masked_store(self):
        memory = MemoryImage()
        addrs = np.array([0, 4], dtype=np.uint32)
        memory.store(addrs, np.array([7, 9], dtype=np.uint32), np.array([True, False]))
        assert memory.read_array(0, 2)[0] == 7
        assert memory.read_array(0, 2)[1] == 0

    def test_colliding_stores_highest_lane_wins(self):
        memory = MemoryImage()
        addrs = np.array([0, 0, 0], dtype=np.uint32)
        memory.store(
            addrs, np.array([1, 2, 3], dtype=np.uint32), np.ones(3, dtype=bool)
        )
        assert memory.read_array(0, 1)[0] == 3

    def test_strict_mode_raises_on_unmapped(self):
        memory = MemoryImage(strict=True)
        with pytest.raises(MemoryError_):
            memory.load(np.array([0x5000], dtype=np.uint32), np.array([True]))

    def test_lenient_mode_reads_zero(self):
        memory = MemoryImage()
        values = memory.load(np.array([0x5000], dtype=np.uint32), np.array([True]))
        assert values[0] == 0

    def test_mapped_bytes_grows_lazily(self):
        memory = MemoryImage()
        assert memory.mapped_bytes == 0
        memory.bind_array(0, np.zeros(1, dtype=np.uint32))
        assert memory.mapped_bytes > 0
