"""The paper's byte-wise MSB-prefix register-value compressor (§3.1).

Instead of BDI's subtract-from-base, every byte position is compared
across lanes; the encoding is the number of most-significant byte
positions that are identical across all (active) lanes.  The base value
is always taken from the first active lane (op[0] in the paper).

For divergent instructions the comparison logic broadcasts a value from
an active lane into inactive lanes before comparing (Figure 7(a)); here
that is modeled by simply restricting the comparison to active lanes,
which the paper proves equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError
from repro.compression.encoding import SCALAR_PREFIX
from repro.obs.telemetry import get_telemetry

#: On-wire word order of the byte-rotated data arrays.  The byte-view
#: tricks in :func:`compress`/:func:`decompress` index byte ``j`` of a
#: word as view column ``j``, which requires little-endian layout; the
#: explicit dtype makes them correct on big-endian hosts too.
_LE_U32 = np.dtype("<u4")


def common_prefix_bytes(values: np.ndarray, mask: np.ndarray | None = None) -> int:
    """Number of identical most-significant bytes across active lanes.

    Returns 0..4; 4 means every active lane holds the same 32-bit value
    (a scalar register).  With zero or one active lane the register is
    trivially scalar and 4 is returned.
    """
    words = np.ascontiguousarray(values, dtype=np.uint32)
    if mask is not None:
        words = words[np.asarray(mask, dtype=bool)]
    if words.size <= 1:
        return SCALAR_PREFIX
    difference = np.bitwise_or.reduce(words ^ words[0])
    diff = int(difference)
    if diff == 0:
        return 4
    if diff & 0xFF000000:
        return 0
    if diff & 0x00FF0000:
        return 1
    if diff & 0x0000FF00:
        return 2
    return 3


def _enc_from_diff(diff: np.ndarray) -> np.ndarray:
    """Lane-axis XOR/OR residue -> per-row prefix length (vectorized).

    ``diff`` holds, per register, the OR over lanes of ``lane ^ lane0``:
    a byte position is part of the common prefix exactly when its diff
    byte is zero, and the encoding is the count of zero bytes from the
    MSB down (a prefix code, so one set byte kills everything below it).
    """
    enc = np.full(diff.shape, 3, dtype=np.int64)
    enc[(diff & np.uint32(0x0000FF00)) != 0] = 2
    enc[(diff & np.uint32(0x00FF0000)) != 0] = 1
    enc[(diff & np.uint32(0xFF000000)) != 0] = 0
    enc[diff == 0] = SCALAR_PREFIX
    return enc


def prefix_bytes_batch(values: np.ndarray) -> np.ndarray:
    """Per-row :func:`common_prefix_bytes` over a ``(n, lanes)`` matrix.

    The whole-trace equivalent of the Figure 3 comparison tree: one XOR
    against lane 0 plus one OR-reduce across the lane axis replaces
    *n* per-event calls.  Bit-identical to the scalar function.
    """
    words = np.ascontiguousarray(values, dtype=np.uint32)
    if words.ndim != 2:
        raise CompressionError(
            f"expected a (rows, lanes) matrix, got shape {words.shape}"
        )
    if words.shape[1] <= 1:
        return np.full(words.shape[0], SCALAR_PREFIX, dtype=np.int64)
    diff = np.bitwise_or.reduce(words ^ words[:, :1], axis=1)
    return _enc_from_diff(diff)


def masked_prefix_bytes_batch(
    values: np.ndarray, lane_masks: np.ndarray
) -> np.ndarray:
    """Per-row masked prefix lengths over a ``(n, lanes)`` matrix.

    ``lane_masks`` is a boolean matrix of the same shape; row *i*'s
    encoding is computed over its active lanes only (the Figure 7(a)
    divergent-compare), with the base lane being the first active one.
    Rows with zero or one active lane are trivially scalar.
    """
    words = np.ascontiguousarray(values, dtype=np.uint32)
    masks = np.asarray(lane_masks, dtype=bool)
    if words.shape != masks.shape or words.ndim != 2:
        raise CompressionError(
            f"values shape {words.shape} != lane-mask shape {masks.shape}"
        )
    rows = words.shape[0]
    active_counts = masks.sum(axis=1)
    first_active = np.where(active_counts > 0, masks.argmax(axis=1), 0)
    base = words[np.arange(rows), first_active]
    diff = np.bitwise_or.reduce(
        np.where(masks, words ^ base[:, None], np.uint32(0)), axis=1
    )
    enc = _enc_from_diff(diff)
    enc[active_counts <= 1] = SCALAR_PREFIX
    return enc


@dataclass(frozen=True)
class CompressedRegister:
    """Storage format of one compressed vector register.

    ``base`` is the first active lane's full 32-bit value (only its top
    ``enc`` bytes are meaningful as the shared prefix, but the hardware
    BVR is 32 bits wide so we keep all of it, matching §3.1's "we always
    use bytes from op[0]").  ``low_bytes`` holds the ``4 - enc``
    least-significant bytes of each lane, lane-major.
    """

    enc: int
    base: int
    warp_size: int
    low_bytes: np.ndarray  # shape (warp_size, 4 - enc), dtype uint8

    @property
    def stored_bits(self) -> int:
        """Bits in the SRAM data arrays (excludes the BVR/EBR sidecar)."""
        return self.warp_size * (4 - self.enc) * 8

    @property
    def total_bits(self) -> int:
        """Data bits plus the 32-bit BVR and 4-bit EBR."""
        return self.stored_bits + 32 + 4

    @property
    def compression_ratio(self) -> float:
        """Uncompressed bits over total compressed bits."""
        return (self.warp_size * 32) / self.total_bits


def compress(values: np.ndarray, mask: np.ndarray | None = None) -> CompressedRegister:
    """Compress a warp-wide register (optionally only its active lanes).

    The returned object always carries all ``warp_size`` lanes of low
    bytes (inactive lanes included) because the hardware writes whole
    byte-rotated arrays; the *encoding* is what the mask affects.
    """
    words = np.ascontiguousarray(values, dtype=np.uint32)
    if words.ndim != 1:
        raise CompressionError(f"expected a 1-D lane array, got shape {words.shape}")
    warp_size = words.shape[0]
    enc = common_prefix_bytes(words, mask)
    if mask is not None:
        active = np.flatnonzero(np.asarray(mask, dtype=bool))
        base = int(words[active[0]]) if active.size else 0
    else:
        base = int(words[0])
    keep = 4 - enc
    # Little-endian byte view: column j is byte j (LSB first) of every
    # lane, so the kept low bytes are one strided slice, no byte loop.
    lanes_bytes = (
        np.ascontiguousarray(words.astype(_LE_U32, copy=False))
        .view(np.uint8)
        .reshape(warp_size, 4)[:, :keep]
        .copy()
    )
    telemetry = get_telemetry()
    if telemetry.enabled:
        # Every compression updates both sidecar entries: the base
        # value register and the 4-bit encoding bits (§3.1).
        telemetry.count("gscalar_compressions", enc=enc)
        telemetry.count("bvr_accesses", op="write")
        telemetry.count("ebr_accesses", op="write")
        if enc:
            telemetry.count("compressor_bytes_saved", enc * warp_size, enc=enc)
    return CompressedRegister(enc=enc, base=base, warp_size=warp_size, low_bytes=lanes_bytes)


def decompress(compressed: CompressedRegister) -> np.ndarray:
    """Reconstruct the full warp-wide uint32 lane values.

    This is the Figure 5 decompression: bytes below the prefix come from
    the data arrays, prefix bytes are broadcast from the base value
    register.
    """
    telemetry = get_telemetry()
    if telemetry.enabled:
        # Decompression reads the encoding bits and (for enc > 0) the
        # base value feeding the Figure 5 broadcast network.
        telemetry.count("gscalar_decompressions", enc=compressed.enc)
        telemetry.count("ebr_accesses", op="read")
        if compressed.enc:
            telemetry.count("bvr_accesses", op="read")
    enc = compressed.enc
    base = np.uint32(compressed.base)
    prefix_mask = np.uint32(0) if enc == 0 else np.uint32((0xFFFFFFFF << (8 * (4 - enc))) & 0xFFFFFFFF)
    values = np.full(compressed.warp_size, base & prefix_mask, dtype=np.uint32)
    # Inverse of the compress-side byte view: pad each lane's kept low
    # bytes back to 4 and reinterpret as little-endian words.
    padded = np.zeros((compressed.warp_size, 4), dtype=np.uint8)
    padded[:, : 4 - enc] = compressed.low_bytes
    values |= padded.view(_LE_U32).ravel().astype(np.uint32, copy=False)
    return values


def compressed_bits(enc: int, warp_size: int) -> int:
    """Total storage bits for a register at a given prefix length."""
    if not 0 <= enc <= 4:
        raise CompressionError(f"enc must be 0..4, got {enc}")
    return warp_size * (4 - enc) * 8 + 32 + 4
