"""Compression-ratio accounting across a dynamic trace.

Feeds the §5.3 comparison ("the average compression ratio of our
compression technique is 2.17, whereas that of BDI is 2.13") and the
per-benchmark breakdowns used by Figure 8 and Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.bdi import BdiMode, bdi_compress
from repro.compression.gscalar import (
    common_prefix_bytes,
    compressed_bits,
    prefix_bytes_batch,
)


@dataclass
class CompressionComparison:
    """Aggregated ours-vs-BDI statistics over register writes."""

    warp_size: int
    registers_seen: int = 0
    ours_total_bits: int = 0
    bdi_total_bits: int = 0
    uncompressed_total_bits: int = 0
    enc_histogram: dict[int, int] = field(default_factory=lambda: {n: 0 for n in range(5)})
    bdi_histogram: dict[BdiMode, int] = field(
        default_factory=lambda: {m: 0 for m in BdiMode}
    )

    def observe(self, values: np.ndarray) -> None:
        """Account one full (non-divergent) register value."""
        enc = common_prefix_bytes(values)
        bdi = bdi_compress(values)
        self.registers_seen += 1
        self.enc_histogram[enc] += 1
        self.bdi_histogram[bdi.mode] += 1
        self.ours_total_bits += compressed_bits(enc, self.warp_size)
        self.bdi_total_bits += bdi.total_bits
        self.uncompressed_total_bits += self.warp_size * 32

    @property
    def ours_ratio(self) -> float:
        """Average compression ratio of the byte-wise technique."""
        if self.ours_total_bits == 0:
            return 1.0
        return self.uncompressed_total_bits / self.ours_total_bits

    @property
    def bdi_ratio(self) -> float:
        """Average compression ratio of BDI."""
        if self.bdi_total_bits == 0:
            return 1.0
        return self.uncompressed_total_bits / self.bdi_total_bits

    def enc_fractions(self) -> dict[int, float]:
        """Fraction of observed registers at each prefix length."""
        total = max(1, self.registers_seen)
        return {n: count / total for n, count in self.enc_histogram.items()}

    def observe_batch(self, values: np.ndarray) -> None:
        """Account a ``(n, warp_size)`` matrix of full register values.

        Bit-identical to calling :meth:`observe` per row; the byte-wise
        side runs as one whole-matrix enc computation
        (:func:`prefix_bytes_batch`), BDI (whose mode search is
        per-register) stays a row loop.
        """
        if values.shape[0] == 0:
            return
        encs = prefix_bytes_batch(values)
        self.registers_seen += values.shape[0]
        for enc, count in zip(*np.unique(encs, return_counts=True)):
            self.enc_histogram[int(enc)] += int(count)
            self.ours_total_bits += int(count) * compressed_bits(
                int(enc), self.warp_size
            )
        self.uncompressed_total_bits += values.shape[0] * self.warp_size * 32
        for row in values:
            bdi = bdi_compress(row)
            self.bdi_histogram[bdi.mode] += 1
            self.bdi_total_bits += bdi.total_bits


def compare_trace(trace, warp_size: int | None = None) -> CompressionComparison:
    """Run the ours-vs-BDI comparison over every register write in a trace.

    Accepts either trace representation: the event form
    (:class:`~repro.simt.trace.KernelTrace`) walks events, the columnar
    form (:class:`~repro.simt.trace.ColumnarTrace`) selects the
    full-mask write rows with array ops and aggregates them in one
    :meth:`~CompressionComparison.observe_batch` call — same counters
    either way.

    Divergent writes are skipped — neither scheme compresses them
    (Section 3.3 for ours; Warped-Compression similarly disables
    compression under partial masks).
    """
    size = warp_size if warp_size is not None else trace.warp_size
    comparison = CompressionComparison(warp_size=size)
    full_mask = (1 << size) - 1
    if hasattr(trace, "values_index"):  # columnar form
        rows = trace.values_index[
            (trace.values_index >= 0) & (trace.masks == np.uint64(full_mask))
        ]
        comparison.observe_batch(
            np.ascontiguousarray(trace.values[rows], dtype=np.uint32)
        )
        return comparison
    for event in trace.all_events():
        if event.dst_values is None:
            continue
        if event.active_mask != full_mask:
            continue
        comparison.observe(event.dst_values)
    return comparison
