"""Vectorized per-architecture interpretation over classified columns.

:class:`~repro.scalar.architectures.ArchitectureView` interprets one
dynamic instruction at a time, building a frozen
:class:`~repro.scalar.architectures.ProcessedEvent` with a tuple of
:class:`~repro.regfile.access.RegisterAccess` objects per event.  The
interpretation itself is almost entirely stateless — every decision is
a pure function of the classification outputs and the architecture
flags — so this module computes it as whole-trace array kernels over
:class:`~repro.scalar.columns.ClassifiedColumns` instead, scattering
register-file accesses straight into the flat table of a
:class:`~repro.scalar.columns.ProcessedColumns`.

Three interpretation regimes exist, dispatched on the architecture:

* **compression-backed** (G-Scalar variants): fully vectorized; the
  per-event access block is laid out ``[sources…, decompress-move
  read/write, final write]`` with positions computed by the
  repeat-offset idiom, matching the event engine's emission order
  exactly.
* **dedicated scalar RF** (prior-work ALU-scalar): the
  :class:`~repro.regfile.scalar_rf.ScalarRegisterFile` residency walk
  is inherently sequential (LRU eviction feeds back into later
  decisions), so this path keeps a slim per-warp Python loop over the
  columns — the same sidecar-loop pattern PR 4 used for BVR/EBR state —
  driving a *real* ``ScalarRegisterFile`` so eviction behavior is
  identical by construction.
* **plain** (baseline, no compression, no scalar RF): trivially
  vectorized.

Output is **bit-identical** to the event engine: the differential
suite compares :func:`process_columns` against
:meth:`ProcessedColumns.from_events` array-for-array across every
workload and every architecture.
"""

from __future__ import annotations

import numpy as np

from repro.config import ArchitectureConfig
from repro.errors import ConfigError
from repro.regfile.scalar_rf import ScalarRegisterFile
from repro.scalar.architectures import _arch_accepts
from repro.scalar.columns import (
    COMPRESSED_READ_ID,
    COMPRESSED_WRITE_ID,
    CTRL_CODE,
    FULL_READ_ID,
    FULL_WRITE_ID,
    PARTIAL_WRITE_ID,
    SCALAR_READ_ID,
    SCALAR_RF_READ_ID,
    SCALAR_RF_WRITE_ID,
    SCALAR_WRITE_ID,
    ClassifiedColumns,
    ProcessedColumns,
)
from repro.scalar.eligibility import ID_TO_SCALAR_CLASS, SCALAR_CLASS_TO_ID, ScalarClass

#: Architecture-interpretation engines selectable via ``--arch-engine``.
ARCH_ENGINE_CHOICES = ("batch", "event")
DEFAULT_ARCH_ENGINE = "batch"

_ALU_SCALAR_ID = SCALAR_CLASS_TO_ID[ScalarClass.ALU_SCALAR]
_HALF_SCALAR_ID = SCALAR_CLASS_TO_ID[ScalarClass.HALF_SCALAR]


def _accepts_lut(arch: ArchitectureConfig) -> np.ndarray:
    """Boolean acceptance per scalar-class id (vector form of
    :func:`repro.scalar.architectures._arch_accepts`)."""
    lut = np.zeros(len(ID_TO_SCALAR_CLASS), dtype=bool)
    for class_id, scalar_class in ID_TO_SCALAR_CLASS.items():
        lut[class_id] = _arch_accepts(arch, scalar_class)
    return lut


def process_columns(
    ccols: ClassifiedColumns,
    arch: ArchitectureConfig,
    move_elision=None,
    static_widths=None,
) -> ProcessedColumns:
    """Interpret a classified column set for one architecture.

    The columnar counterpart of
    :func:`repro.scalar.architectures.process_classified`:
    ``move_elision`` optionally applies the §3.3 compiler-assisted
    decompress-move elision (compression-backed architectures only,
    same as the event engine); ``static_widths`` is the per-register
    proven ``enc`` table feeding the static-compression architecture
    (required when ``arch.static_compression``).
    """
    if ccols.warp_size < 1:
        raise ConfigError(f"warp_size must be >= 1, got {ccols.warp_size}")
    if arch.static_compression:
        if static_widths is None:
            raise ConfigError(
                f"{arch.name}: static compression needs the kernel's "
                "per-register guaranteed widths (analyze_widths(...)."
                "register_enc)"
            )
        return _process_static(ccols, arch, static_widths)
    if arch.register_compression:
        return _process_compressed(ccols, arch, move_elision)
    if arch.dedicated_scalar_rf:
        return _process_scalar_rf(ccols, arch)
    return _process_plain(ccols, arch)


class ArchCarry:
    """Per-warp interpretation state threaded between trace chunks.

    Of the four interpretation regimes only the dedicated-scalar-RF
    walk is stateful (LRU residency feeds back into later decisions);
    the carry holds each split warp's live
    :class:`~repro.regfile.scalar_rf.ScalarRegisterFile`, keyed by
    global warp index.  Completed warps are dropped eagerly, so at most
    one entry lives between chunks per stream.
    """

    def __init__(self) -> None:
        self.scalar_rfs: dict[int, ScalarRegisterFile] = {}


def process_columns_chunk(
    ccols: ClassifiedColumns,
    arch: ArchitectureConfig,
    carry: ArchCarry,
    warp_start: int = 0,
    first_warp_continued: bool = False,
    last_warp_continues: bool = False,
    move_elision=None,
    static_widths=None,
) -> ProcessedColumns:
    """Interpret one chunk's classified columns for one architecture.

    The chunk-streaming counterpart of :func:`process_columns`: the
    stateless regimes (compressed, plain, static) are pure functions of
    the chunk's rows and dispatch unchanged; the dedicated-scalar-RF
    walk resumes split warps from ``carry`` so concatenated chunk
    outputs match the whole-trace interpretation bit-for-bit.
    """
    if ccols.warp_size < 1:
        raise ConfigError(f"warp_size must be >= 1, got {ccols.warp_size}")
    if arch.dedicated_scalar_rf and not (
        arch.static_compression or arch.register_compression
    ):
        return _process_scalar_rf(
            ccols,
            arch,
            carry=carry,
            warp_start=warp_start,
            first_warp_continued=first_warp_continued,
            last_warp_continues=last_warp_continues,
        )
    return process_columns(
        ccols, arch, move_elision=move_elision, static_widths=static_widths
    )


# ----------------------------------------------------------------------
# Shared helpers.
# ----------------------------------------------------------------------
def _exec_lanes(
    ccols: ClassifiedColumns,
    scalar_executed: np.ndarray,
    lo_half: np.ndarray,
    hi_half: np.ndarray,
) -> np.ndarray:
    """Vector form of ``ArchitectureView._exec_lanes``.

    Precedence (ctrl > scalar > half > active lanes) is realized by
    assigning in reverse order.
    """
    half_lanes = ccols.warp_size // 2
    lanes = ccols.active_lanes.astype(np.int32, copy=True)
    half_rows = lo_half | hi_half
    if half_rows.any():
        half_count = np.where(lo_half, 1, half_lanes) + np.where(
            hi_half, 1, half_lanes
        )
        lanes[half_rows] = half_count[half_rows].astype(np.int32)
    lanes[scalar_executed] = 1
    lanes[ccols.category_codes == CTRL_CODE] = 0
    return lanes


def _segment_sums(flags: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of a flat 0/1 array under an offset table.

    Uses the cumsum-difference idiom rather than ``np.add.reduceat``,
    whose empty-segment semantics (returning ``a[idx]``) are wrong for
    zero-source events.
    """
    running = np.zeros(len(flags) + 1, dtype=np.int64)
    np.cumsum(flags, out=running[1:])
    return running[offsets[1:]] - running[offsets[:-1]]


def _effective_moves(ccols: ClassifiedColumns, move_elision) -> np.ndarray:
    """Decompress-move flags after optional §3.3 elision."""
    move = ccols.needs_move & ccols.has_dst_enc
    if move_elision is not None and move.any():
        blocks = ccols.blocks
        dst = ccols.dst
        elidable = move_elision.move_elidable
        for index in np.flatnonzero(move):
            register = int(dst[index])
            if register >= 0 and elidable(int(blocks[index]), register):
                move[index] = False
    return move


# ----------------------------------------------------------------------
# Compression-backed register file (G-Scalar variants).
# ----------------------------------------------------------------------
def _process_compressed(
    ccols: ClassifiedColumns,
    arch: ArchitectureConfig,
    move_elision,
) -> ProcessedColumns:
    accepts = _accepts_lut(arch)[ccols.scalar_class_ids]
    scalar_executed = accepts & (ccols.scalar_class_ids != _HALF_SCALAR_ID)
    lo_half = accepts & ccols.lo_half_exec
    hi_half = accepts & ccols.hi_half_exec
    half_compression = arch.half_register_compression

    # Per-source access rows ------------------------------------------------
    src_divergent = ccols.src_divergent
    src_scalar = ccols.src_scalar_for_read
    compressed_src = ~src_divergent & ~src_scalar
    kind_src = np.where(
        src_divergent,
        FULL_READ_ID,
        np.where(src_scalar, SCALAR_READ_ID, COMPRESSED_READ_ID),
    ).astype(np.uint8)
    enc_src = np.where(src_divergent, 0, ccols.src_enc).astype(np.int8)
    enc_lo_src = np.where(compressed_src, ccols.src_enc_lo, 0).astype(np.int8)
    enc_hi_src = np.where(compressed_src, ccols.src_enc_hi, 0).astype(np.int8)
    half_src = compressed_src & half_compression
    decomp_src = compressed_src & (
        (ccols.src_enc > 0)
        | (half_compression & ((ccols.src_enc_lo > 0) | (ccols.src_enc_hi > 0)))
    )

    src_offsets = ccols.src_offsets
    src_counts = np.diff(src_offsets)
    decompressor = _segment_sums(decomp_src, src_offsets).astype(np.int32)

    # Event-level structure -------------------------------------------------
    move = _effective_moves(ccols, move_elision)
    has_dst = ccols.has_dst_enc
    extra = move.astype(np.int32)
    decompressor += extra
    compressor = np.where(
        has_dst,
        np.where(
            ccols.divergent,
            1,
            np.where(ccols.dst_is_scalar, 1 - scalar_executed.astype(np.int32), 1),
        ),
        0,
    ).astype(np.int32)

    acc_counts = src_counts + 2 * move.astype(np.int64) + has_dst.astype(np.int64)
    acc_offsets = np.zeros(len(acc_counts) + 1, dtype=np.int64)
    np.cumsum(acc_counts, out=acc_offsets[1:])
    total = int(acc_offsets[-1])

    kind_ids = np.empty(total, dtype=np.uint8)
    registers = np.empty(total, dtype=np.int32)
    enc = np.zeros(total, dtype=np.int8)
    enc_lo = np.zeros(total, dtype=np.int8)
    enc_hi = np.zeros(total, dtype=np.int8)
    half = np.zeros(total, dtype=bool)
    acc_masks = np.zeros(total, dtype=np.uint64)
    # Every compressed-path access touches the BVR/EBR sidecar.
    sidecar = np.ones(total, dtype=bool)

    # Scatter sources: event i's sources land at acc_offsets[i] + k.
    m_src = int(src_offsets[-1])
    if m_src:
        pos_src = np.repeat(acc_offsets[:-1], src_counts) + (
            np.arange(m_src, dtype=np.int64) - np.repeat(src_offsets[:-1], src_counts)
        )
        kind_ids[pos_src] = kind_src
        registers[pos_src] = ccols.src_registers
        enc[pos_src] = enc_src
        enc_lo[pos_src] = enc_lo_src
        enc_hi[pos_src] = enc_hi_src
        half[pos_src] = half_src

    # Scatter decompress-move pairs (compressed read-back + full write).
    move_idx = np.flatnonzero(move)
    if len(move_idx):
        pos_read = acc_offsets[move_idx] + src_counts[move_idx]
        pos_write = pos_read + 1
        kind_ids[pos_read] = COMPRESSED_READ_ID
        registers[pos_read] = ccols.dst[move_idx]
        enc[pos_read] = ccols.before_enc[move_idx]
        enc_lo[pos_read] = ccols.before_enc_lo[move_idx]
        enc_hi[pos_read] = ccols.before_enc_hi[move_idx]
        half[pos_read] = half_compression
        kind_ids[pos_write] = FULL_WRITE_ID
        registers[pos_write] = ccols.dst[move_idx]

    # Scatter the final destination write (last row of each block).
    write_idx = np.flatnonzero(has_dst)
    if len(write_idx):
        pos_dst = acc_offsets[write_idx + 1] - 1
        div_w = ccols.divergent[write_idx]
        scalar_w = ~div_w & ccols.dst_is_scalar[write_idx]
        other_w = ~div_w & ~scalar_w
        kind_ids[pos_dst] = np.where(
            div_w,
            PARTIAL_WRITE_ID,
            np.where(scalar_w, SCALAR_WRITE_ID, COMPRESSED_WRITE_ID),
        ).astype(np.uint8)
        registers[pos_dst] = ccols.dst[write_idx]
        enc[pos_dst] = np.where(
            div_w, 0, np.where(scalar_w, 4, ccols.dst_enc[write_idx])
        ).astype(np.int8)
        enc_lo[pos_dst] = np.where(other_w, ccols.dst_enc_lo[write_idx], 0).astype(
            np.int8
        )
        enc_hi[pos_dst] = np.where(other_w, ccols.dst_enc_hi[write_idx], 0).astype(
            np.int8
        )
        half[pos_dst] = other_w & half_compression
        acc_masks[pos_dst] = np.where(div_w, ccols.masks[write_idx], 0)

    return ProcessedColumns(
        warp_size=ccols.warp_size,
        warp_lengths=ccols.warp_lengths,
        opcode_ids=ccols.opcode_ids,
        category_codes=ccols.category_codes,
        active_lanes=ccols.active_lanes,
        scalar_executed=scalar_executed,
        lo_half_scalar=lo_half,
        hi_half_scalar=hi_half,
        exec_lanes=_exec_lanes(ccols, scalar_executed, lo_half, hi_half),
        extra_instructions=extra,
        compressor_ops=compressor,
        decompressor_ops=decompressor,
        acc_offsets=acc_offsets,
        acc_kind_ids=kind_ids,
        acc_registers=registers,
        acc_enc=enc,
        acc_enc_lo=enc_lo,
        acc_enc_hi=enc_hi,
        acc_half=half,
        acc_masks=acc_masks,
        acc_sidecar=sidecar,
    )


# ----------------------------------------------------------------------
# Plain register file (baseline: no compression, no scalar RF).
# ----------------------------------------------------------------------
def _process_plain(
    ccols: ClassifiedColumns, arch: ArchitectureConfig
) -> ProcessedColumns:
    accepts = _accepts_lut(arch)[ccols.scalar_class_ids]
    scalar_executed = accepts & (ccols.scalar_class_ids == _ALU_SCALAR_ID)
    no_half = np.zeros(ccols.num_events, dtype=bool)

    src_offsets = ccols.src_offsets
    src_counts = np.diff(src_offsets)
    has_dst = ccols.has_dst_enc
    acc_counts = src_counts + has_dst.astype(np.int64)
    acc_offsets = np.zeros(len(acc_counts) + 1, dtype=np.int64)
    np.cumsum(acc_counts, out=acc_offsets[1:])
    total = int(acc_offsets[-1])

    kind_ids = np.empty(total, dtype=np.uint8)
    registers = np.empty(total, dtype=np.int32)
    acc_masks = np.zeros(total, dtype=np.uint64)

    m_src = int(src_offsets[-1])
    if m_src:
        pos_src = np.repeat(acc_offsets[:-1], src_counts) + (
            np.arange(m_src, dtype=np.int64) - np.repeat(src_offsets[:-1], src_counts)
        )
        kind_ids[pos_src] = FULL_READ_ID
        registers[pos_src] = ccols.src_registers

    write_idx = np.flatnonzero(has_dst)
    if len(write_idx):
        pos_dst = acc_offsets[write_idx + 1] - 1
        div_w = ccols.divergent[write_idx]
        kind_ids[pos_dst] = np.where(div_w, PARTIAL_WRITE_ID, FULL_WRITE_ID).astype(
            np.uint8
        )
        registers[pos_dst] = ccols.dst[write_idx]
        acc_masks[pos_dst] = np.where(div_w, ccols.masks[write_idx], 0)

    zeros32 = np.zeros(ccols.num_events, dtype=np.int32)
    return ProcessedColumns(
        warp_size=ccols.warp_size,
        warp_lengths=ccols.warp_lengths,
        opcode_ids=ccols.opcode_ids,
        category_codes=ccols.category_codes,
        active_lanes=ccols.active_lanes,
        scalar_executed=scalar_executed,
        lo_half_scalar=no_half,
        hi_half_scalar=no_half.copy(),
        exec_lanes=_exec_lanes(ccols, scalar_executed, no_half, no_half),
        extra_instructions=zeros32,
        compressor_ops=zeros32.copy(),
        decompressor_ops=zeros32.copy(),
        acc_offsets=acc_offsets,
        acc_kind_ids=kind_ids,
        acc_registers=registers,
        acc_enc=np.zeros(total, dtype=np.int8),
        acc_enc_lo=np.zeros(total, dtype=np.int8),
        acc_enc_hi=np.zeros(total, dtype=np.int8),
        acc_half=np.zeros(total, dtype=bool),
        acc_masks=acc_masks,
        acc_sidecar=np.zeros(total, dtype=bool),
    )


# ----------------------------------------------------------------------
# Statically-compressed register file (compile-time proven widths).
# ----------------------------------------------------------------------
def _process_static(
    ccols: ClassifiedColumns,
    arch: ArchitectureConfig,
    static_widths,
) -> ProcessedColumns:
    """Vector form of ``ArchitectureView._process_static_compressed``.

    Every access shape is a pure table lookup — register id into the
    proven-width table — so this is the simplest vectorized regime:
    like :func:`_process_plain` but with reads/writes of proven-narrow
    registers emitted as sidecar-less compressed accesses, plus a
    decompressor tick per compressed read.  No scalar execution, no
    compressor energy, no extra instructions.
    """
    widths_arr = np.asarray(static_widths, dtype=np.int8)
    no_scalar = np.zeros(ccols.num_events, dtype=bool)
    no_half = np.zeros(ccols.num_events, dtype=bool)

    src_offsets = ccols.src_offsets
    src_counts = np.diff(src_offsets)
    src_enc = widths_arr[ccols.src_registers]
    compressed_src = src_enc > 0
    decompressor = _segment_sums(compressed_src, src_offsets).astype(np.int32)

    has_dst = ccols.has_dst_enc
    acc_counts = src_counts + has_dst.astype(np.int64)
    acc_offsets = np.zeros(len(acc_counts) + 1, dtype=np.int64)
    np.cumsum(acc_counts, out=acc_offsets[1:])
    total = int(acc_offsets[-1])

    kind_ids = np.empty(total, dtype=np.uint8)
    registers = np.empty(total, dtype=np.int32)
    enc = np.zeros(total, dtype=np.int8)
    acc_masks = np.zeros(total, dtype=np.uint64)

    m_src = int(src_offsets[-1])
    if m_src:
        pos_src = np.repeat(acc_offsets[:-1], src_counts) + (
            np.arange(m_src, dtype=np.int64) - np.repeat(src_offsets[:-1], src_counts)
        )
        kind_ids[pos_src] = np.where(
            compressed_src, COMPRESSED_READ_ID, FULL_READ_ID
        ).astype(np.uint8)
        registers[pos_src] = ccols.src_registers
        enc[pos_src] = src_enc  # zero wherever the read is full

    write_idx = np.flatnonzero(has_dst)
    if len(write_idx):
        pos_dst = acc_offsets[write_idx + 1] - 1
        div_w = ccols.divergent[write_idx]
        dst_enc = widths_arr[ccols.dst[write_idx]]
        kind_ids[pos_dst] = np.where(
            div_w,
            PARTIAL_WRITE_ID,
            np.where(dst_enc > 0, COMPRESSED_WRITE_ID, FULL_WRITE_ID),
        ).astype(np.uint8)
        registers[pos_dst] = ccols.dst[write_idx]
        enc[pos_dst] = np.where(div_w, 0, dst_enc).astype(np.int8)
        acc_masks[pos_dst] = np.where(div_w, ccols.masks[write_idx], 0)

    zeros32 = np.zeros(ccols.num_events, dtype=np.int32)
    return ProcessedColumns(
        warp_size=ccols.warp_size,
        warp_lengths=ccols.warp_lengths,
        opcode_ids=ccols.opcode_ids,
        category_codes=ccols.category_codes,
        active_lanes=ccols.active_lanes,
        scalar_executed=no_scalar,
        lo_half_scalar=no_half,
        hi_half_scalar=no_half.copy(),
        exec_lanes=_exec_lanes(ccols, no_scalar, no_half, no_half),
        extra_instructions=zeros32,
        compressor_ops=zeros32.copy(),
        decompressor_ops=decompressor,
        acc_offsets=acc_offsets,
        acc_kind_ids=kind_ids,
        acc_registers=registers,
        acc_enc=enc,
        acc_enc_lo=np.zeros(total, dtype=np.int8),
        acc_enc_hi=np.zeros(total, dtype=np.int8),
        acc_half=np.zeros(total, dtype=bool),
        acc_masks=acc_masks,
        acc_sidecar=np.zeros(total, dtype=bool),
    )


# ----------------------------------------------------------------------
# Dedicated scalar RF (prior-work ALU-scalar): sequential sidecar walk.
# ----------------------------------------------------------------------
def _process_scalar_rf(
    ccols: ClassifiedColumns,
    arch: ArchitectureConfig,
    carry: "ArchCarry | None" = None,
    warp_start: int = 0,
    first_warp_continued: bool = False,
    last_warp_continues: bool = False,
) -> ProcessedColumns:
    """Per-warp sequential walk driving a real
    :class:`~repro.regfile.scalar_rf.ScalarRegisterFile`.

    LRU residency/eviction feeds back into later scalar-execution and
    access-kind decisions, so there is no closed-form vectorization;
    mirroring ``ArchitectureView._process_uncompressed`` op-for-op
    (including the resident-check-before-read ordering) keeps the walk
    bit-identical to the event engine.

    ``carry`` (chunked mode) resumes a boundary-split warp's register
    file from the previous chunk and parks it again for the next one;
    interior warps always start fresh, exactly as in whole-trace mode.
    """
    accepts_lut = _accepts_lut(arch)
    count = ccols.num_events
    scalar_executed = np.zeros(count, dtype=bool)
    extra = np.zeros(count, dtype=np.int32)
    compressor = np.zeros(count, dtype=np.int32)
    acc_offsets = np.zeros(count + 1, dtype=np.int64)

    kind_ids: list[int] = []
    registers: list[int] = []
    acc_masks: list[int] = []

    class_ids = ccols.scalar_class_ids
    has_dst = ccols.has_dst_enc
    divergent = ccols.divergent
    dst_is_scalar = ccols.dst_is_scalar
    dst = ccols.dst
    masks = ccols.masks
    src_offsets = ccols.src_offsets
    src_registers = ccols.src_registers
    bounds = ccols.warp_bounds()

    num_warps = len(ccols.warp_lengths)
    for warp in range(num_warps):
        scalar_rf = None
        if carry is not None and warp == 0 and first_warp_continued:
            scalar_rf = carry.scalar_rfs.pop(warp_start + warp, None)
        if scalar_rf is None:
            scalar_rf = ScalarRegisterFile()
        for index in range(int(bounds[warp]), int(bounds[warp + 1])):
            sources = [
                int(src_registers[k])
                for k in range(int(src_offsets[index]), int(src_offsets[index + 1]))
            ]
            executes = accepts_lut[class_ids[index]] and (
                class_ids[index] == _ALU_SCALAR_ID
            )
            if executes:
                executes = all(scalar_rf.is_resident(r) for r in sources)
            scalar_executed[index] = executes

            for register in sources:
                if scalar_rf.read(register):
                    kind_ids.append(SCALAR_RF_READ_ID)
                else:
                    kind_ids.append(FULL_READ_ID)
                registers.append(register)
                acc_masks.append(0)

            if has_dst[index]:
                destination = int(dst[index])
                compressor[index] = 1
                if not divergent[index] and dst_is_scalar[index]:
                    scalar_rf.write_scalar(destination)
                    kind_ids.append(SCALAR_RF_WRITE_ID)
                    registers.append(destination)
                    acc_masks.append(0)
                else:
                    if scalar_rf.is_resident(destination):
                        # Leaving the scalar RF; a divergent partial
                        # write first spills the scalar value back.
                        scalar_rf.invalidate(destination)
                        if divergent[index]:
                            kind_ids.append(SCALAR_RF_READ_ID)
                            registers.append(destination)
                            acc_masks.append(0)
                            kind_ids.append(FULL_WRITE_ID)
                            registers.append(destination)
                            acc_masks.append(0)
                            extra[index] = 1
                    if divergent[index]:
                        kind_ids.append(PARTIAL_WRITE_ID)
                        registers.append(destination)
                        acc_masks.append(int(masks[index]))
                    else:
                        kind_ids.append(FULL_WRITE_ID)
                        registers.append(destination)
                        acc_masks.append(0)
            acc_offsets[index + 1] = len(kind_ids)
        if carry is not None and warp == num_warps - 1 and last_warp_continues:
            carry.scalar_rfs[warp_start + warp] = scalar_rf

    no_half = np.zeros(count, dtype=bool)
    total = len(kind_ids)
    return ProcessedColumns(
        warp_size=ccols.warp_size,
        warp_lengths=ccols.warp_lengths,
        opcode_ids=ccols.opcode_ids,
        category_codes=ccols.category_codes,
        active_lanes=ccols.active_lanes,
        scalar_executed=scalar_executed,
        lo_half_scalar=no_half,
        hi_half_scalar=no_half.copy(),
        exec_lanes=_exec_lanes(ccols, scalar_executed, no_half, no_half),
        extra_instructions=extra,
        compressor_ops=compressor,
        decompressor_ops=np.zeros(count, dtype=np.int32),
        acc_offsets=acc_offsets,
        acc_kind_ids=np.array(kind_ids, dtype=np.uint8),
        acc_registers=np.array(registers, dtype=np.int32),
        acc_enc=np.zeros(total, dtype=np.int8),
        acc_enc_lo=np.zeros(total, dtype=np.int8),
        acc_enc_hi=np.zeros(total, dtype=np.int8),
        acc_half=np.zeros(total, dtype=bool),
        acc_masks=np.array(acc_masks, dtype=np.uint64),
        acc_sidecar=np.zeros(total, dtype=bool),
    )
