"""Figure 9 — percentage of instructions eligible for scalar execution.

Stacked series: "ALU scalar" (prior work), "+ SFU/mem" ("all scalar"),
"+ half-warp", "+ divergent" (G-Scalar).  Paper averages: 22% for ALU
scalar, rising to 40% under G-Scalar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table
from repro.scalar.eligibility import ScalarClass
from repro.scalar.tracker import trace_statistics


@dataclass
class Fig9Row:
    abbr: str
    alu_scalar: float
    sfu_mem_scalar: float
    half_scalar: float
    divergent_scalar: float

    @property
    def total_eligible(self) -> float:
        return (
            self.alu_scalar
            + self.sfu_mem_scalar
            + self.half_scalar
            + self.divergent_scalar
        )


@dataclass
class Fig9Data:
    rows: list[Fig9Row]

    def _average(self, getter) -> float:
        if not self.rows:
            return 0.0
        return sum(getter(r) for r in self.rows) / len(self.rows)

    @property
    def average_alu_scalar(self) -> float:
        return self._average(lambda r: r.alu_scalar)

    @property
    def average_total(self) -> float:
        return self._average(lambda r: r.total_eligible)


def compute(runner: ExperimentRunner) -> Fig9Data:
    """Regenerate Figure 9's stacked eligibility series."""
    rows = []
    for abbr in runner.benchmark_names():
        run = runner.run(abbr)
        stats = trace_statistics(run.classified)
        rows.append(
            Fig9Row(
                abbr=abbr,
                alu_scalar=stats.fraction(ScalarClass.ALU_SCALAR),
                sfu_mem_scalar=(
                    stats.fraction(ScalarClass.SFU_SCALAR)
                    + stats.fraction(ScalarClass.MEM_SCALAR)
                ),
                half_scalar=stats.fraction(ScalarClass.HALF_SCALAR),
                divergent_scalar=stats.fraction(ScalarClass.DIVERGENT_SCALAR),
            )
        )
    return Fig9Data(rows=rows)


def render(data: Fig9Data) -> str:
    """Figure 9 as a text table."""
    table_rows = [
        (
            row.abbr,
            f"{100 * row.alu_scalar:.1f}",
            f"{100 * row.sfu_mem_scalar:.1f}",
            f"{100 * row.half_scalar:.1f}",
            f"{100 * row.divergent_scalar:.1f}",
            f"{100 * row.total_eligible:.1f}",
        )
        for row in data.rows
    ]
    table_rows.append(
        (
            "AVG",
            f"{100 * data.average_alu_scalar:.1f}",
            f"{100 * data._average(lambda r: r.sfu_mem_scalar):.1f}",
            f"{100 * data._average(lambda r: r.half_scalar):.1f}",
            f"{100 * data._average(lambda r: r.divergent_scalar):.1f}",
            f"{100 * data.average_total:.1f}",
        )
    )
    body = render_table(
        ["bench", "ALU scalar", "+SFU/mem", "+half", "+divergent", "total"],
        table_rows,
        title="Figure 9: instructions eligible for scalar execution (%)",
    )
    return body + "\npaper averages: ALU scalar 22 -> G-Scalar total 40"
