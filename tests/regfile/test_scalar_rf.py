"""Unit tests for the prior-work single-bank scalar register file."""

import pytest

from repro.errors import ConfigError
from repro.regfile.scalar_rf import ScalarRegisterFile


class TestResidency:
    def test_write_then_read_hits(self):
        rf = ScalarRegisterFile()
        rf.write_scalar(3)
        assert rf.read(3)
        assert rf.scalar_reads == 1

    def test_miss_falls_back_to_vector(self):
        rf = ScalarRegisterFile()
        assert not rf.read(5)
        assert rf.vector_fallback_reads == 1

    def test_invalidate(self):
        rf = ScalarRegisterFile()
        rf.write_scalar(2)
        rf.invalidate(2)
        assert not rf.is_resident(2)
        assert not rf.read(2)

    def test_invalidate_nonresident_is_noop(self):
        rf = ScalarRegisterFile()
        rf.invalidate(9)
        assert not rf.is_resident(9)

    def test_lru_eviction(self):
        rf = ScalarRegisterFile(capacity=2)
        rf.write_scalar(0)
        rf.write_scalar(1)
        rf.read(0)  # make 1 the LRU
        rf.write_scalar(2)
        assert rf.evictions == 1
        assert rf.is_resident(0)
        assert not rf.is_resident(1)
        assert rf.is_resident(2)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            ScalarRegisterFile(capacity=0)


class TestPortSerialization:
    def test_single_port_serializes(self):
        rf = ScalarRegisterFile()
        assert rf.port_cycles_for(0) == 0
        assert rf.port_cycles_for(1) == 1
        assert rf.port_cycles_for(3) == 3  # the §4.1 burst bottleneck

    def test_multi_port(self):
        rf = ScalarRegisterFile(read_ports=2)
        assert rf.port_cycles_for(3) == 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            ScalarRegisterFile().port_cycles_for(-1)
