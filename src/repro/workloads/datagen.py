"""Synthetic input generators with controlled value-similarity.

The paper's mechanisms react to *byte-level similarity* of the values
flowing through vector registers (Figure 8) and to *divergence shape*
(Figure 1).  Real Rodinia/Parboil inputs produce those patterns from
physics; the proxies reproduce them with explicit generators:

* :func:`scalar_words` — one value everywhere (broadcast parameters,
  kernel constants loaded from memory),
* :func:`shared_prefix_words` — values sharing their top *n* bytes
  (neighbouring addresses, narrow-range integers),
* :func:`affine_words` — ``base + i*stride`` (addresses, indices),
* :func:`narrow_floats` — floats in a tight range, sharing sign +
  exponent and often mantissa-high bytes (physical fields like
  temperatures or lattice densities), and
* :func:`mixed_words` — a seeded blend of the above matching a target
  similarity histogram.

Every generator takes an explicit seed; runs are bit-reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def scalar_words(count: int, value: int, seed: int = 0) -> np.ndarray:
    """``count`` copies of one 32-bit value."""
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
    return np.full(count, value & 0xFFFFFFFF, dtype=np.uint32)


def shared_prefix_words(
    count: int, prefix_bytes: int, seed: int, base: int | None = None
) -> np.ndarray:
    """Values whose top ``prefix_bytes`` bytes are identical.

    The low bytes are uniform random, so the *exact* prefix length is
    ``prefix_bytes`` with overwhelming probability for count >= 8.
    """
    if not 0 <= prefix_bytes <= 4:
        raise WorkloadError(f"prefix_bytes must be 0..4, got {prefix_bytes}")
    rng = _rng(seed)
    if base is None:
        base = int(rng.integers(0, 2**32, dtype=np.uint64))
    if prefix_bytes == 4:
        return scalar_words(count, base)
    low_bits = 8 * (4 - prefix_bytes)
    prefix_mask = (0xFFFFFFFF << low_bits) & 0xFFFFFFFF
    low = rng.integers(0, 1 << low_bits, size=count, dtype=np.uint64)
    return ((base & prefix_mask) | low).astype(np.uint32)


def affine_words(count: int, base: int, stride: int) -> np.ndarray:
    """``base + i*stride`` (mod 2^32) — the shape of addresses."""
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count}")
    indices = np.arange(count, dtype=np.uint64)
    return ((base + indices * (stride & 0xFFFFFFFF)) & 0xFFFFFFFF).astype(np.uint32)


def narrow_floats(
    count: int, center: float, spread: float, seed: int
) -> np.ndarray:
    """float32 values in ``center +/- spread`` as uint32 bit patterns.

    A tight relative spread keeps sign+exponent (byte 3) and often the
    mantissa-high byte identical across the array.
    """
    if spread < 0:
        raise WorkloadError(f"spread must be >= 0, got {spread}")
    rng = _rng(seed)
    values = (center + rng.uniform(-spread, spread, size=count)).astype(np.float32)
    return values.view(np.uint32)


def small_ints(count: int, upper: int, seed: int) -> np.ndarray:
    """Uniform integers in [0, upper) — bytes 3..1 are zero for small
    upper bounds (pixel data, counters)."""
    if upper < 1:
        raise WorkloadError(f"upper must be >= 1, got {upper}")
    rng = _rng(seed)
    return rng.integers(0, upper, size=count, dtype=np.uint64).astype(np.uint32)


def random_words(count: int, seed: int) -> np.ndarray:
    """Uniform 32-bit values — no exploitable similarity."""
    rng = _rng(seed)
    return rng.integers(0, 2**32, size=count, dtype=np.uint64).astype(np.uint32)


def mixed_words(
    count: int,
    fractions: dict[int, float],
    seed: int,
    chunk: int = 32,
) -> np.ndarray:
    """Blend of similarity classes at warp-sized granularity.

    ``fractions`` maps prefix length (0..4) to the fraction of
    ``chunk``-sized blocks drawn from that class; fractions must sum to
    ~1.  Each chunk is internally homogeneous, mimicking how a warp's
    lanes see one data region at a time.
    """
    total = sum(fractions.values())
    if not 0.99 <= total <= 1.01:
        raise WorkloadError(f"fractions must sum to 1, got {total}")
    rng = _rng(seed)
    chunks = (count + chunk - 1) // chunk
    classes = list(fractions.keys())
    probabilities = np.array([fractions[c] for c in classes], dtype=float)
    probabilities /= probabilities.sum()
    output = np.empty(chunks * chunk, dtype=np.uint32)
    for index in range(chunks):
        prefix = int(rng.choice(classes, p=probabilities))
        block_seed = int(rng.integers(0, 2**31))
        output[index * chunk : (index + 1) * chunk] = shared_prefix_words(
            chunk, prefix, block_seed
        )
    return output[:count]


def boundary_mask_pattern(
    count: int, divergent_fraction: float, seed: int, warp_size: int = 32
) -> np.ndarray:
    """Per-thread 0/1 flags such that a fraction of warps see a mixed
    (divergence-inducing) pattern and the rest are uniform.

    Used as branch inputs: a warp whose flags are all-0 or all-1 stays
    convergent; a mixed warp diverges.
    """
    if not 0.0 <= divergent_fraction <= 1.0:
        raise WorkloadError(
            f"divergent_fraction must be in [0, 1], got {divergent_fraction}"
        )
    rng = _rng(seed)
    warps = (count + warp_size - 1) // warp_size
    # Deterministic allocation: exactly round(warps * fraction) warps are
    # mixed, so small launches still hit the target divergence.
    mixed_count = int(round(warps * divergent_fraction))
    mixed_warps = set(rng.choice(warps, size=mixed_count, replace=False).tolist())
    flags = np.zeros(warps * warp_size, dtype=np.uint32)
    for warp in range(warps):
        start = warp * warp_size
        if warp in mixed_warps:
            # Mixed warp: majority takes one side, a random minority the other.
            minority = rng.integers(1, warp_size // 2 + 1)
            lanes = rng.choice(warp_size, size=int(minority), replace=False)
            flags[start + lanes] = 1
        elif rng.uniform() < 0.5:
            flags[start : start + warp_size] = 1
    return flags[:count]
