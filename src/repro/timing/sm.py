"""Cycle-level model of one streaming multiprocessor.

Models the issue path the paper's mechanisms interact with: two warp
schedulers, a shared pool of operand collectors, 16 register banks with
single-ported arbitration (plus the prior-work single scalar-RF bank,
whose serialization is the §4.1 bottleneck), dual 16-lane ALU pipelines,
one memory pipeline and one 4-lane SFU pipeline with multi-cycle warp
dispatch, a no-bypass scoreboard, and branch-resolution stalls.

The model is trace-driven: each warp executes a fixed list of
:class:`~repro.timing.ops.TimingOp`.  G-Scalar's +3-cycle pipeline
stretch enters through ``extra_latency``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.config import GpuConfig
from repro.errors import TimingError
from repro.isa.opcodes import OpCategory
from repro.timing.memory import MemoryAccessCounts, MemoryModel
from repro.timing.ops import SCALAR_RF_BANK, TimingOp
from repro.timing.scheduler import partition_warps
from repro.timing.scoreboard import Scoreboard

# Deprecated aliases of the GpuConfig latency defaults: the simulator
# reads config.alu_latency & co. so sensitivity sweeps can vary them;
# these module-level names remain for backward compatibility only.
ALU_LATENCY = GpuConfig().alu_latency
LONG_ALU_LATENCY = GpuConfig().long_alu_latency
SFU_LATENCY = GpuConfig().sfu_latency
CTRL_LATENCY = GpuConfig().ctrl_latency

#: Sentinel for "blocked until the branch writes back".
_BLOCKED_ON_BRANCH = 1 << 60
#: Sentinel for "blocked at a CTA barrier".
_BLOCKED_ON_BARRIER = (1 << 60) + 1

#: Stall-cause indices into the per-scheduler accumulation arrays.  The
#: order doubles as classification precedence: when the warps of one
#: partition are blocked for different reasons in the same cycle, the
#: scheduler-cycle is attributed to the lowest index present.
STALL_SCOREBOARD = 0
STALL_BRANCH_SHADOW = 1
STALL_BARRIER = 2
STALL_STREAM_EXHAUSTED = 3
STALL_COLLECTORS_FULL = 4
STALL_BANK_CONFLICT = 5

#: Field names of :class:`StallBreakdown`, indexed by the constants above.
STALL_CAUSES = (
    "scoreboard",
    "branch_shadow",
    "barrier",
    "stream_exhausted",
    "collectors_full",
    "bank_conflict",
)


@dataclass
class StallBreakdown:
    """Why scheduler slots went unused, summed over all cycles.

    Each field counts scheduler-cycles (one scheduler idle for one
    cycle, skipped-ahead dead cycles included) attributed to exactly
    one cause:

    * ``scoreboard`` — some runnable warp in the partition had its next
      op blocked by an in-flight register (RAW/WAW/WAR, no bypassing);
    * ``branch_shadow`` — warps were waiting for an unresolved branch
      to write back, none scoreboard-blocked;
    * ``barrier`` — warps were parked at a CTA barrier, none blocked
      by the scoreboard or a branch;
    * ``stream_exhausted`` — the partition had nothing left to issue
      (empty slots, or fully-issued warps draining their last ops);
    * ``collectors_full`` — issue was suppressed because the
      operand-collector pool was full;
    * ``bank_conflict`` — the collector pool was full in a cycle whose
      bank arbitration serialized conflicting requests, so the
      back-pressure is attributable to RF-bank-conflict serialization
      (the single scalar-RF bank of §4.1 shows up here).

    Mixed-cause cycles are attributed by the fixed precedence
    ``scoreboard > branch_shadow > barrier > stream_exhausted`` (the
    :data:`STALL_CAUSES` index order), so the attribution is a
    deterministic function of machine state and bit-identical between
    the cycle-level and event-driven engines.
    """

    scoreboard: int = 0
    branch_shadow: int = 0
    barrier: int = 0
    stream_exhausted: int = 0
    collectors_full: int = 0
    bank_conflict: int = 0

    @property
    def no_ready_warp(self) -> int:
        """Deprecated two-bucket view: every stall that is not collector
        back-pressure.  Kept as a derived sum for stats-json and other
        back-compat consumers of the old counter."""
        return (
            self.scoreboard
            + self.branch_shadow
            + self.barrier
            + self.stream_exhausted
        )

    @property
    def total(self) -> int:
        return (
            self.scoreboard
            + self.branch_shadow
            + self.barrier
            + self.stream_exhausted
            + self.collectors_full
            + self.bank_conflict
        )

    def as_dict(self) -> dict[str, int]:
        """Cause name -> scheduler-cycles, in taxonomy order."""
        return {name: getattr(self, name) for name in STALL_CAUSES}


@dataclass
class TimingResult:
    """Outcome of one SM simulation."""

    cycles: int
    instructions: int
    memory_counts: MemoryAccessCounts
    useful_instructions: int = 0
    issued_per_scheduler: list[int] = field(default_factory=list)
    scalar_bank_conflicts: int = 0
    bank_conflict_cycles: int = 0
    stalls: StallBreakdown = field(default_factory=StallBreakdown)
    #: One breakdown per scheduler (empty for zero-warp streams);
    #: ``stalls`` is always their field-wise sum.
    stalls_per_scheduler: list[StallBreakdown] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """IPC over *useful* instructions — inserted decompress-moves
        and spills consume cycles but do not count as work, so
        architectures are compared on equal footing."""
        if self.cycles == 0:
            return 0.0
        return self.useful_instructions / self.cycles

    @property
    def raw_ipc(self) -> float:
        """IPC counting every dispatched op, inserted ones included."""
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class _Collector:
    """One operand-collector entry."""

    warp: int
    op: TimingOp
    pending_banks: list[int]


class SmSimulator:
    """Simulate one SM running a fixed set of warps to completion."""

    def __init__(
        self,
        warp_ops: list[list[TimingOp]],
        config: GpuConfig,
        extra_latency: int = 0,
        memory: MemoryModel | None = None,
        warps_per_cta: int | None = None,
        recorder=None,
    ):
        if extra_latency < 0:
            raise TimingError(f"extra_latency must be >= 0, got {extra_latency}")
        if warps_per_cta is not None and warps_per_cta < 1:
            raise TimingError(f"warps_per_cta must be >= 1, got {warps_per_cta}")
        self.warp_ops = warp_ops
        self.config = config
        self.extra_latency = extra_latency
        #: Optional :class:`repro.obs.timeline.FlightRecorder`; ``None``
        #: (the default) keeps the loop hook-free beyond one local
        #: ``is not None`` test per recorded event.
        self.recorder = recorder
        # Without CTA information each warp is its own CTA: barriers
        # become no-ops, matching barrier-free workloads.
        self.warps_per_cta = warps_per_cta or 1
        self.memory = memory or MemoryModel(
            l1_size_bytes=config.l1_cache_bytes,
            l2_share_bytes=max(8 * 1024, config.l2_cache_bytes // config.num_sms),
        )
        self.num_warps = len(warp_ops)
        self.max_resident = min(config.max_warps_per_sm, self.num_warps)
        if self.num_warps and min(self.warps_per_cta, self.num_warps) > self.max_resident:
            # A CTA that cannot fully fit on the SM can never be
            # activated as a unit; without this guard the run would hit
            # the deadlock detector instead of a clear diagnostic.
            raise TimingError(
                f"warps_per_cta={self.warps_per_cta} exceeds the SM's "
                f"{self.max_resident}-warp residency; one CTA can never "
                "be resident at once"
            )

    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 50_000_000) -> TimingResult:
        config = self.config
        if self.num_warps == 0:
            return TimingResult(cycles=0, instructions=0, memory_counts=self.memory.counts)

        pcs = [0] * self.num_warps
        scoreboards = [Scoreboard() for _ in range(self.num_warps)]
        blocked_until = [0] * self.num_warps
        in_flight = [0] * self.num_warps  # ops issued but not written back
        remaining = self.num_warps
        # CTAs activate as whole units (GigaThread-style): a CTA's warps
        # become resident together, so a barrier can never wait on a
        # CTA-mate that has no slot to run in.  ``free_slots`` is a
        # min-heap so activation always fills the lowest slots first,
        # which for warps_per_cta == 1 reproduces the historical
        # one-warp-per-freed-slot behaviour exactly.
        free_slots = list(range(self.max_resident))
        next_warp_to_activate = 0
        slot_to_warp: dict[int, int | None] = {
            slot: None for slot in range(self.max_resident)
        }
        recorder = self.recorder
        cycle = 0

        def activate_ctas() -> None:
            nonlocal next_warp_to_activate
            while next_warp_to_activate < self.num_warps:
                cta_size = min(
                    self.warps_per_cta, self.num_warps - next_warp_to_activate
                )
                if cta_size > len(free_slots):
                    break
                for _ in range(cta_size):
                    slot = heapq.heappop(free_slots)
                    slot_to_warp[slot] = next_warp_to_activate
                    if recorder is not None:
                        recorder.warp_activate(cycle, next_warp_to_activate, slot)
                    next_warp_to_activate += 1

        activate_ctas()

        schedulers = partition_warps(
            self.max_resident, config.schedulers_per_sm, config.scheduler_policy
        )

        collectors: list[_Collector] = []
        max_collectors = config.operand_collectors_per_sm
        alu_ports = [0] * config.alu_pipelines
        mem_ports = [0] * config.mem_pipelines
        sfu_ports = [0] * config.sfu_pipelines

        writebacks: list[tuple[int, int, int, int | None, bool]] = []
        sequence = itertools.count()
        barrier_arrived: dict[int, set[int]] = {}
        num_schedulers = config.schedulers_per_sm
        issued_counts = [0] * num_schedulers
        scalar_conflicts = 0
        bank_conflict_cycles = 0
        instructions = 0
        useful_instructions = 0
        # Per-scheduler stall-cause accumulators, indexed by the
        # STALL_* constants; ``cycle_causes`` remembers what each
        # scheduler was charged in the current cycle so skipped-ahead
        # dead cycles replay the same attribution.
        stall_counts = [[0] * len(STALL_CAUSES) for _ in range(num_schedulers)]
        cycle_causes = [STALL_STREAM_EXHAUSTED] * num_schedulers

        def classify_stall(scheduler) -> int:
            """Attribute one idle scheduler-cycle to its strongest cause.

            Scans the scheduler's slot partition at the issue point:
            a runnable-but-scoreboard-blocked warp dominates a branch
            shadow dominates a barrier wait dominates an exhausted
            stream (the STALL_* index order).
            """
            cause = STALL_STREAM_EXHAUSTED
            for slot in scheduler.warp_ids:
                warp = slot_to_warp[slot]
                if warp is None or pcs[warp] >= len(self.warp_ops[warp]):
                    continue
                until = blocked_until[warp]
                if until == _BLOCKED_ON_BRANCH:
                    if STALL_BRANCH_SHADOW < cause:
                        cause = STALL_BRANCH_SHADOW
                elif until > cycle:
                    if STALL_BARRIER < cause:
                        cause = STALL_BARRIER
                else:
                    return STALL_SCOREBOARD
            return cause

        while remaining > 0:
            if cycle > max_cycles:
                raise TimingError(
                    f"SM simulation exceeded {max_cycles} cycles; "
                    "likely a deadlock in the timing model"
                )
            progressed = False

            # 1. Write-backs scheduled for this cycle.
            while writebacks and writebacks[0][0] <= cycle:
                _, _, warp, dst, is_ctrl = heapq.heappop(writebacks)
                scoreboards[warp].release(dst)
                in_flight[warp] -= 1
                if is_ctrl and blocked_until[warp] == _BLOCKED_ON_BRANCH:
                    blocked_until[warp] = cycle
                if recorder is not None:
                    recorder.writeback(cycle, warp, dst)
                progressed = True

            # 2. Operand collection: each bank serves one request/cycle.
            had_conflict = False
            if collectors:
                served_banks: set[int] = set()
                for collector in collectors:
                    still_pending = []
                    for bank in collector.pending_banks:
                        if bank not in served_banks:
                            served_banks.add(bank)
                            progressed = True
                        else:
                            still_pending.append(bank)
                            had_conflict = True
                            if bank == SCALAR_RF_BANK:
                                scalar_conflicts += 1
                    collector.pending_banks = still_pending
                if had_conflict:
                    bank_conflict_cycles += 1

            # 3. Dispatch ready collectors to free pipeline ports.
            for collector in [c for c in collectors if not c.pending_banks]:
                op = collector.op
                if op.category in (OpCategory.ALU, OpCategory.CTRL):
                    ports = alu_ports
                elif op.category is OpCategory.MEM:
                    ports = mem_ports
                else:
                    ports = sfu_ports
                port_index = next(
                    (i for i, busy in enumerate(ports) if busy <= cycle), None
                )
                if port_index is None:
                    continue
                ports[port_index] = cycle + op.dispatch_cycles
                complete = (
                    cycle + op.dispatch_cycles + self._latency_of(op) + self.extra_latency
                )
                heapq.heappush(
                    writebacks,
                    (
                        complete,
                        next(sequence),
                        collector.warp,
                        op.dst,
                        op.category is OpCategory.CTRL,
                    ),
                )
                collectors.remove(collector)
                instructions += 1
                if not op.inserted:
                    useful_instructions += 1
                progressed = True

            # 4. Issue: each scheduler picks at most one ready warp.
            # A full collector pool charges every scheduler to the
            # bank-conflict bucket when this cycle's arbitration had to
            # serialize (the pool drains slower than issue fills it
            # because of the conflicts), else to collectors_full.
            full_cause = STALL_BANK_CONFLICT if had_conflict else STALL_COLLECTORS_FULL
            if len(collectors) >= max_collectors and remaining > 0:
                for scheduler_index in range(num_schedulers):
                    stall_counts[scheduler_index][full_cause] += 1
                    cycle_causes[scheduler_index] = full_cause
            if len(collectors) < max_collectors:
                ready_slots: set[int] = set()
                for slot, warp in slot_to_warp.items():
                    if warp is None or pcs[warp] >= len(self.warp_ops[warp]):
                        continue
                    if blocked_until[warp] > cycle:
                        continue
                    op = self.warp_ops[warp][pcs[warp]]
                    if scoreboards[warp].can_issue(op.src_regs, op.dst):
                        ready_slots.add(slot)
                for scheduler_index, scheduler in enumerate(schedulers):
                    if len(collectors) >= max_collectors:
                        stall_counts[scheduler_index][full_cause] += 1
                        cycle_causes[scheduler_index] = full_cause
                        continue
                    slot = scheduler.pick(ready_slots)
                    if slot is None:
                        cause = classify_stall(scheduler)
                        stall_counts[scheduler_index][cause] += 1
                        cycle_causes[scheduler_index] = cause
                        continue
                    ready_slots.discard(slot)
                    warp = slot_to_warp[slot]
                    assert warp is not None
                    op = self.warp_ops[warp][pcs[warp]]
                    pcs[warp] += 1
                    if op.is_barrier:
                        instructions += 1
                        useful_instructions += 1
                        issued_counts[scheduler_index] += 1
                        progressed = True
                        if recorder is not None:
                            recorder.issue(
                                cycle, warp, scheduler_index, "BAR", "barrier", ()
                            )
                        self._arrive_at_barrier(
                            warp, barrier_arrived, blocked_until, pcs, cycle
                        )
                        continue
                    scoreboards[warp].reserve(op.dst)
                    in_flight[warp] += 1
                    if op.category is OpCategory.CTRL:
                        blocked_until[warp] = _BLOCKED_ON_BRANCH
                    collectors.append(
                        _Collector(warp=warp, op=op, pending_banks=list(op.src_banks))
                    )
                    issued_counts[scheduler_index] += 1
                    progressed = True
                    if recorder is not None:
                        if op.category is OpCategory.CTRL:
                            hint, hint_regs = "branch", ()
                        elif pcs[warp] >= len(self.warp_ops[warp]):
                            hint, hint_regs = "drain", ()
                        else:
                            nxt = self.warp_ops[warp][pcs[warp]]
                            blocking = scoreboards[warp].blocking_registers(
                                nxt.src_regs, nxt.dst
                            )
                            if blocking:
                                hint, hint_regs = "scoreboard", blocking
                            else:
                                hint, hint_regs = "scheduler", ()
                        recorder.issue(
                            cycle, warp, scheduler_index, op.category.name, hint, hint_regs
                        )

            # 5. Retire finished warps; activate pending CTAs whole.
            for slot, warp in list(slot_to_warp.items()):
                if warp is None:
                    continue
                if pcs[warp] >= len(self.warp_ops[warp]) and in_flight[warp] == 0:
                    remaining -= 1
                    slot_to_warp[slot] = None
                    heapq.heappush(free_slots, slot)
                    # The slot's warp is gone: GTO greediness must not
                    # carry over to whatever is activated here next.
                    schedulers[slot % num_schedulers].forget(slot)
                    if recorder is not None:
                        recorder.warp_retire(cycle, warp)
                    progressed = True
            activate_ctas()

            if remaining <= 0:
                cycle += 1
                break

            # 6. Skip ahead over dead cycles.
            if progressed:
                cycle += 1
            else:
                next_events = []
                if writebacks:
                    next_events.append(writebacks[0][0])
                if any(not c.pending_banks for c in collectors):
                    busy_ports = [
                        t for t in alu_ports + mem_ports + sfu_ports if t > cycle
                    ]
                    if busy_ports:
                        next_events.append(min(busy_ports))
                if not next_events:
                    raise TimingError(
                        f"timing deadlock: no progress at cycle {cycle} "
                        f"({remaining} warps remaining)"
                    )
                new_cycle = max(cycle + 1, min(next_events))
                # Machine state is frozen across the skipped stretch,
                # so each dead cycle repeats this cycle's per-scheduler
                # attribution exactly.
                skipped = new_cycle - cycle - 1
                if skipped:
                    for scheduler_index in range(num_schedulers):
                        stall_counts[scheduler_index][
                            cycle_causes[scheduler_index]
                        ] += skipped
                cycle = new_cycle

        if recorder is not None:
            recorder.finalize(cycle)
        per_scheduler = [StallBreakdown(*counts) for counts in stall_counts]
        return TimingResult(
            cycles=cycle,
            instructions=instructions,
            memory_counts=self.memory.counts,
            useful_instructions=useful_instructions,
            issued_per_scheduler=issued_counts,
            scalar_bank_conflicts=scalar_conflicts,
            bank_conflict_cycles=bank_conflict_cycles,
            stalls=StallBreakdown(*(sum(c) for c in zip(*stall_counts))),
            stalls_per_scheduler=per_scheduler,
        )

    # ------------------------------------------------------------------
    def _arrive_at_barrier(
        self,
        warp: int,
        barrier_arrived: dict[int, set[int]],
        blocked_until: list[int],
        pcs: list[int],
        cycle: int,
    ) -> None:
        """Record a barrier arrival; release the CTA when complete.

        A warp that already retired all its ops counts as arrived (it
        can never reach another barrier), matching CUDA's requirement
        that barriers are CTA-uniform.
        """
        recorder = self.recorder
        cta = warp // self.warps_per_cta
        arrived = barrier_arrived.setdefault(cta, set())
        arrived.add(warp)
        blocked_until[warp] = _BLOCKED_ON_BARRIER
        if recorder is not None:
            recorder.barrier_arrive(cycle, warp)
        cta_warps = [
            w
            for w in range(cta * self.warps_per_cta, (cta + 1) * self.warps_per_cta)
            if w < self.num_warps
        ]
        waiting_needed = [
            w for w in cta_warps if pcs[w] < len(self.warp_ops[w]) or w in arrived
        ]
        if all(w in arrived for w in waiting_needed):
            for w in arrived:
                blocked_until[w] = cycle + 1
                if recorder is not None:
                    recorder.barrier_release(cycle + 1, w)
            arrived.clear()

    def _latency_of(self, op: TimingOp) -> int:
        if op.category is OpCategory.MEM:
            if op.is_shared_mem:
                return self.memory.access_shared()
            return self.memory.access_global(op.mem_segments, op.is_store)
        if op.category is OpCategory.SFU:
            return self.config.sfu_latency
        if op.category is OpCategory.CTRL:
            return self.config.ctrl_latency
        if op.long_latency:
            return self.config.long_alu_latency
        return self.config.alu_latency
