"""Register-value compression: the paper's byte-wise scheme and BDI."""

from repro.compression.bdi import (
    BdiCompressed,
    BdiMode,
    bdi_bytes_accessed,
    bdi_compress,
    bdi_decompress,
)
from repro.compression.encoding import (
    SCALAR_PREFIX,
    RegisterEncoding,
    bits_to_enc,
    enc_to_bits,
    is_scalar_encoding,
)
from repro.compression.gscalar import (
    CompressedRegister,
    common_prefix_bytes,
    compress,
    compressed_bits,
    decompress,
)
from repro.compression.half import (
    HalfRegisterEncoding,
    compress_halves,
    scalar_chunks,
)
from repro.compression.stats import CompressionComparison, compare_trace
from repro.compression.wide import (
    AddressWidthStudy,
    address_width_study,
    common_prefix_bytes_wide,
)

__all__ = [
    "SCALAR_PREFIX",
    "AddressWidthStudy",
    "BdiCompressed",
    "BdiMode",
    "CompressedRegister",
    "CompressionComparison",
    "HalfRegisterEncoding",
    "RegisterEncoding",
    "address_width_study",
    "bdi_bytes_accessed",
    "bdi_compress",
    "bdi_decompress",
    "bits_to_enc",
    "common_prefix_bytes",
    "common_prefix_bytes_wide",
    "compare_trace",
    "compress",
    "compress_halves",
    "compressed_bits",
    "decompress",
    "enc_to_bits",
    "is_scalar_encoding",
    "scalar_chunks",
]
