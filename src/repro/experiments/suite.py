"""Per-benchmark workload statistics (``python -m repro suite``).

Prints, for every Table 2 benchmark, the dynamic characteristics the
proxies were tuned to (divergence, scalar-class mix, pipeline mix) —
the table used to validate the workloads against their published
signatures. Useful when adding or retuning a proxy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table
from repro.isa.opcodes import OpCategory
from repro.scalar.eligibility import ScalarClass
from repro.scalar.tracker import trace_statistics


@dataclass
class SuiteRow:
    abbr: str
    instructions: int
    divergent: float
    alu_scalar: float
    sfu_scalar: float
    mem_scalar: float
    half_scalar: float
    divergent_scalar: float
    eligible: float
    sfu_mix: float
    mem_mix: float


@dataclass
class SuiteData:
    rows: list[SuiteRow]

    def averages(self) -> SuiteRow:
        count = max(1, len(self.rows))

        def mean(getter):
            return sum(getter(r) for r in self.rows) / count

        return SuiteRow(
            abbr="AVG",
            instructions=sum(r.instructions for r in self.rows),
            divergent=mean(lambda r: r.divergent),
            alu_scalar=mean(lambda r: r.alu_scalar),
            sfu_scalar=mean(lambda r: r.sfu_scalar),
            mem_scalar=mean(lambda r: r.mem_scalar),
            half_scalar=mean(lambda r: r.half_scalar),
            divergent_scalar=mean(lambda r: r.divergent_scalar),
            eligible=mean(lambda r: r.eligible),
            sfu_mix=mean(lambda r: r.sfu_mix),
            mem_mix=mean(lambda r: r.mem_mix),
        )


def compute(runner: ExperimentRunner) -> SuiteData:
    """Collect the statistics table over all 17 benchmarks."""
    rows = []
    for abbr in runner.benchmark_names():
        run = runner.run(abbr)
        stats = trace_statistics(run.classified)
        histogram = run.trace.category_histogram()
        total = max(1, stats.total_instructions)
        rows.append(
            SuiteRow(
                abbr=abbr,
                instructions=stats.total_instructions,
                divergent=stats.divergent_instructions / total,
                alu_scalar=stats.fraction(ScalarClass.ALU_SCALAR),
                sfu_scalar=stats.fraction(ScalarClass.SFU_SCALAR),
                mem_scalar=stats.fraction(ScalarClass.MEM_SCALAR),
                half_scalar=stats.fraction(ScalarClass.HALF_SCALAR),
                divergent_scalar=stats.fraction(ScalarClass.DIVERGENT_SCALAR),
                eligible=stats.eligible_fraction,
                sfu_mix=histogram[OpCategory.SFU] / total,
                mem_mix=histogram[OpCategory.MEM] / total,
            )
        )
    return SuiteData(rows=rows)


def render(data: SuiteData) -> str:
    def cells(row: SuiteRow):
        return (
            row.abbr,
            str(row.instructions),
            f"{100 * row.divergent:.1f}",
            f"{100 * row.alu_scalar:.1f}",
            f"{100 * row.sfu_scalar:.1f}",
            f"{100 * row.mem_scalar:.1f}",
            f"{100 * row.half_scalar:.1f}",
            f"{100 * row.divergent_scalar:.1f}",
            f"{100 * row.eligible:.1f}",
            f"{100 * row.sfu_mix:.1f}",
            f"{100 * row.mem_mix:.1f}",
        )

    table_rows = [cells(row) for row in data.rows]
    table_rows.append(cells(data.averages()))
    return render_table(
        [
            "bench", "instrs", "div%", "ALUsc", "SFUsc", "MEMsc",
            "half", "divsc", "elig", "SFU%", "MEM%",
        ],
        table_rows,
        title="Workload-suite dynamic characteristics",
    )
