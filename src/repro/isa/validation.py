"""Extra structural validation passes over kernels.

:class:`repro.isa.kernel.Kernel` already checks CFG integrity on
construction.  The passes here catch programming mistakes in workload
kernels that would otherwise surface as confusing runtime behaviour:
reads of registers no block ever writes, branch conditions that are
never defined, and unusually high register pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelValidationError
from repro.isa.kernel import Branch, Kernel


@dataclass
class KernelReport:
    """Summary statistics produced by :func:`validate_kernel`."""

    name: str
    num_blocks: int
    num_instructions: int
    num_registers: int
    written_registers: set[int] = field(default_factory=set)
    read_registers: set[int] = field(default_factory=set)

    @property
    def never_written(self) -> set[int]:
        """Registers read somewhere but written nowhere."""
        return self.read_registers - self.written_registers


def validate_kernel(kernel: Kernel, max_registers: int = 64) -> KernelReport:
    """Run all extra validation passes; raise on definite errors.

    ``max_registers`` mirrors the per-thread register budget a compiler
    would enforce (64 on Fermi-class hardware).
    """
    written: set[int] = set()
    read: set[int] = set()
    for block in kernel.blocks:
        for inst in block.instructions:
            if inst.dst is not None:
                written.add(inst.dst.index)
            for src in inst.source_registers:
                read.add(src.index)
        if isinstance(block.terminator, Branch):
            read.add(block.terminator.cond.index)

    undefined = read - written
    if undefined:
        raise KernelValidationError(
            f"kernel {kernel.name!r}: registers {sorted(undefined)} are read "
            "but never written by any block"
        )
    if kernel.num_registers > max_registers:
        raise KernelValidationError(
            f"kernel {kernel.name!r} uses {kernel.num_registers} registers, "
            f"exceeding the per-thread budget of {max_registers}"
        )
    return KernelReport(
        name=kernel.name,
        num_blocks=len(kernel.blocks),
        num_instructions=kernel.static_instruction_count(),
        num_registers=kernel.num_registers,
        written_registers=written,
        read_registers=read,
    )
