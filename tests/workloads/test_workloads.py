"""Per-benchmark signature tests: every proxy runs and matches the
qualitative behaviour the paper reports for its original."""

import pytest

from repro.isa.opcodes import OpCategory
from repro.isa.validation import validate_kernel
from repro.scalar.eligibility import ScalarClass
from repro.scalar.tracker import classify_trace, trace_statistics
from repro.simt.executor import run_kernel
from repro.workloads.registry import SCALES, all_workloads, build_workload

SCALE = SCALES["tiny"]


@pytest.fixture(scope="module")
def all_stats():
    """Execute every workload once at tiny scale (shared by tests)."""
    results = {}
    for spec in all_workloads():
        built = spec.builder(SCALE)
        trace = run_kernel(built.kernel, built.launch, built.memory)
        classified = classify_trace(trace, built.kernel.num_registers)
        results[spec.abbr] = (built, trace, trace_statistics(classified))
    return results


@pytest.mark.parametrize("abbr", [s.abbr for s in all_workloads()])
def test_kernel_is_structurally_valid(abbr):
    built = build_workload(abbr, scale="tiny")
    report = validate_kernel(built.kernel)
    assert report.num_instructions > 5


@pytest.mark.parametrize("abbr", [s.abbr for s in all_workloads()])
def test_workload_executes_and_produces_instructions(abbr, all_stats):
    _, trace, stats = all_stats[abbr]
    assert stats.total_instructions >= 100
    assert trace.warp_size == 32


def test_divergent_benchmarks_diverge(all_stats):
    for abbr in ("HW", "LBM", "SAD", "BT", "HS"):
        _, _, stats = all_stats[abbr]
        assert stats.divergent_instructions / stats.total_instructions > 0.15, abbr


def test_nondivergent_benchmarks_stay_convergent(all_stats):
    """§5.1 names mri-q, sgemm and spmv as non-divergent; spmv's ragged
    rows still diverge at loop exits, so check MQ and MM."""
    for abbr in ("MQ", "MM"):
        _, _, stats = all_stats[abbr]
        assert stats.divergent_instructions / stats.total_instructions < 0.05, abbr


def test_lbm_is_divergent_scalar_heavy(all_stats):
    _, _, stats = all_stats["LBM"]
    assert stats.fraction(ScalarClass.DIVERGENT_SCALAR) > 0.15


def test_bp_has_scalar_sfu_and_half_warp_population(all_stats):
    _, _, stats = all_stats["BP"]
    assert stats.fraction(ScalarClass.SFU_SCALAR) > 0.08
    assert stats.fraction(ScalarClass.HALF_SCALAR) > 0.05


def test_bp_sfu_instructions_mostly_scalar(all_stats):
    _, trace, stats = all_stats["BP"]
    sfu_total = trace.category_histogram()[OpCategory.SFU]
    sfu_scalar = stats.class_counts[ScalarClass.SFU_SCALAR]
    assert sfu_scalar / sfu_total > 0.6


def test_mm_and_mq_have_broadcast_loads(all_stats):
    for abbr in ("MM", "MQ"):
        _, _, stats = all_stats[abbr]
        assert stats.fraction(ScalarClass.MEM_SCALAR) > 0.05, abbr


def test_mv_and_mg_have_little_full_scalar(all_stats):
    """§5.3: MG and MV rely on partial-byte compression, not scalar."""
    for abbr in ("MV", "MG"):
        _, _, stats = all_stats[abbr]
        assert stats.eligible_fraction < 0.30, abbr


def test_lc_uses_long_latency_division(all_stats):
    built, trace, _ = all_stats["LC"]
    from repro.isa.opcodes import LONG_LATENCY_ALU

    has_div = any(e.opcode in LONG_LATENCY_ALU for e in trace.all_events())
    assert has_div
    assert built.launch.total_warps(32) <= 6  # low occupancy


def test_memory_intensive_benchmarks_issue_more_memory_ops(all_stats):
    _, lbm_trace, _ = all_stats["LBM"]
    _, bp_trace, _ = all_stats["BP"]
    lbm_mem = lbm_trace.category_histogram()[OpCategory.MEM] / lbm_trace.total_instructions
    bp_mem = bp_trace.category_histogram()[OpCategory.MEM] / bp_trace.total_instructions
    assert lbm_mem > 2 * bp_mem


def test_workloads_are_deterministic():
    built_a = build_workload("SAD", scale="tiny")
    built_b = build_workload("SAD", scale="tiny")
    trace_a = run_kernel(built_a.kernel, built_a.launch, built_a.memory)
    trace_b = run_kernel(built_b.kernel, built_b.launch, built_b.memory)
    assert trace_a.total_instructions == trace_b.total_instructions
    masks_a = [e.active_mask for e in trace_a.all_events()]
    masks_b = [e.active_mask for e in trace_b.all_events()]
    assert masks_a == masks_b
