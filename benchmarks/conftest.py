"""Shared helpers for the figure/table regeneration benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper,
prints the same rows/series the paper reports, and asserts the
qualitative shape (who wins, roughly by how much, where crossovers
fall).  Absolute numbers differ from the paper — the substrate is a
Python simulator, not the authors' GPGPU-Sim + GPUWattch stack — but
the shape must hold.

Heavy computations run through ``benchmark.pedantic(rounds=1)`` so the
harness reports wall-clock per figure without re-running multi-second
simulations dozens of times.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner

#: Scale used by the figure benches.  "small" (16 warps/benchmark) keeps
#: a full regeneration within seconds per figure while preserving every
#: shape the assertions check; pass --paper-scale for the full runs.
BENCH_SCALE = "small"


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run figure benches at the full 'default' workload scale",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> str:
    return "default" if request.config.getoption("--paper-scale") else BENCH_SCALE


@pytest.fixture(scope="session")
def shared_runner(bench_scale) -> ExperimentRunner:
    """One runner shared by all benches: traces execute exactly once."""
    return ExperimentRunner(scale=bench_scale)


def run_once(benchmark, func, *args):
    """Measure one invocation of an expensive figure computation."""
    return benchmark.pedantic(func, args=args, rounds=1, iterations=1)
