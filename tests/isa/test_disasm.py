"""Tests for the kernel disassembler."""

from repro.isa import KernelBuilder, disassemble


def test_straight_line_listing():
    b = KernelBuilder("simple")
    x = b.mov(0x2A)
    b.iadd(x, 1)
    text = disassemble(b.finish())
    assert "// kernel simple" in text
    assert "B0:" in text
    assert "mov" in text and "#0x2a" in text
    assert text.rstrip().endswith("exit")


def test_branch_rendering():
    b = KernelBuilder("branching")
    tid = b.tid()
    cond = b.setlt(tid, 4)
    with b.if_(cond):
        b.mov(1)
    text = disassemble(b.finish())
    assert "%tid" in text
    assert "bra" in text and "?" in text
    assert "jmp" in text


def test_every_block_labelled():
    b = KernelBuilder("blocks")
    with b.for_range(0, 3):
        b.mov(0)
    kernel = b.finish()
    text = disassemble(kernel)
    for block in kernel.blocks:
        assert f"B{block.block_id}:" in text


def test_workload_kernels_disassemble():
    from repro.workloads.registry import all_workloads, SCALES

    for spec in all_workloads()[:5]:
        built = spec.builder(SCALES["tiny"])
        text = disassemble(built.kernel)
        assert built.kernel.name in text
