"""Differential gate: chunk-streaming pipeline vs the whole-trace engines.

The streaming orchestrator (:mod:`repro.experiments.streaming`) must be
*bit-identical* to the whole-trace batch pipeline for any chunk size —
same classified columns, same per-architecture processed columns, same
timing result and the same power report.  These tests pin that contract
across every workload and architecture, at the chunk-grid edge cases
(size 1, one chunk, empty trace), and under hypothesis-drawn random
chunk sizes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.static_.widths import analyze_widths
from repro.config import GpuConfig
from repro.experiments.runner import matrix_architectures
from repro.experiments.streaming import StreamingPipeline, stream_pipeline
from repro.power.accounting import PowerAccountant
from repro.scalar.arch_batch import process_columns
from repro.scalar.batch import classify_columnar_batch
from repro.scalar.columns import (
    ClassifiedColumns,
    concat_classified_columns,
    concat_processed_columns,
    processed_columns_equal,
)
from repro.simt import run_kernel
from repro.simt.trace import iter_chunks
from repro.timing.gpu import simulate_architecture_columns
from repro.workloads.registry import all_workloads, build_workload

ARCHES = matrix_architectures()
ARCH_IDS = [arch.name for arch in ARCHES]
WORKLOAD_ABBRS = [spec.abbr for spec in all_workloads()]

_CASE_CACHE: dict[str, dict] = {}


def workload_case(abbr: str) -> dict:
    """Tiny-scale trace plus the whole-trace reference per architecture."""
    if abbr not in _CASE_CACHE:
        built = build_workload(abbr, "tiny")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        columnar = trace.to_columnar()
        config = GpuConfig()
        warps_per_cta = built.launch.warps_per_cta(trace.warp_size)
        widths = analyze_widths(built.kernel, warp_size=trace.warp_size).register_enc
        static_widths = {
            arch.name: (widths if arch.static_compression else None)
            for arch in ARCHES
        }
        _, classified = classify_columnar_batch(columnar, built.kernel.num_registers)
        ccols = ClassifiedColumns.from_classified(
            classified, trace.warp_size, columnar=columnar
        )
        reference = {}
        for arch in ARCHES:
            pcols = process_columns(
                ccols, arch, static_widths=static_widths[arch.name]
            )
            timing = simulate_architecture_columns(
                ccols,
                pcols,
                arch,
                config,
                warps_per_cta=warps_per_cta,
                sm_engine="event",
            )
            power = PowerAccountant(arch, config=config).account_columns(
                pcols, timing
            )
            reference[arch.name] = (pcols, timing, power)
        _CASE_CACHE[abbr] = {
            "built": built,
            "columnar": columnar,
            "config": config,
            "warps_per_cta": warps_per_cta,
            "static_widths": static_widths,
            "ccols": ccols,
            "reference": reference,
        }
    return _CASE_CACHE[abbr]


def assert_classified_identical(expected: ClassifiedColumns, actual: ClassifiedColumns):
    assert actual.warp_size == expected.warp_size
    want, got = expected.as_arrays(), actual.as_arrays()
    assert sorted(want) == sorted(got)
    for name, array in want.items():
        assert np.array_equal(array, got[name]), f"classified column {name} differs"


def stream_case(case: dict, chunk_events: int):
    """Run the chunked pipeline collecting every per-chunk fragment."""
    ccols_fragments: list[ClassifiedColumns] = []
    continued: list[bool] = []
    pcols_fragments: dict[str, list] = {arch.name: [] for arch in ARCHES}

    def on_classified(chunk, ccols):
        ccols_fragments.append(ccols)
        continued.append(chunk.first_warp_continued)

    def on_processed(chunk, arch, pcols):
        pcols_fragments[arch.name].append(pcols)

    outcome = stream_pipeline(
        iter_chunks(case["columnar"], chunk_events),
        ARCHES,
        case["built"].kernel.num_registers,
        config=case["config"],
        static_widths=case["static_widths"],
        warps_per_cta=case["warps_per_cta"],
        sm_engine="event",
        on_classified=on_classified,
        on_processed=on_processed,
    )
    return outcome, ccols_fragments, continued, pcols_fragments


def assert_stream_matches_whole(case: dict, chunk_events: int):
    outcome, ccols_fragments, continued, pcols_fragments = stream_case(
        case, chunk_events
    )
    assert outcome.num_events == case["columnar"].num_events
    assert_classified_identical(
        case["ccols"], concat_classified_columns(ccols_fragments, continued)
    )
    for arch in ARCHES:
        pcols, timing, power = case["reference"][arch.name]
        assert processed_columns_equal(
            pcols, concat_processed_columns(pcols_fragments[arch.name], continued)
        ), f"processed columns differ on {arch.name}"
        assert outcome.timing[arch.name] == timing, f"timing differs on {arch.name}"
        assert outcome.power[arch.name] == power, f"power differs on {arch.name}"
    return outcome


class TestWorkloadMatrix:
    """All 17 workloads x all 5 architectures, warp-splitting chunk size."""

    @pytest.mark.parametrize("abbr", WORKLOAD_ABBRS)
    def test_chunked_identical(self, abbr):
        case = workload_case(abbr)
        # A prime chunk size guarantees warps get split mid-stream.
        assert_stream_matches_whole(case, 7)


class TestChunkEdgeCases:
    def test_chunk_size_one(self):
        case = workload_case("HS")
        outcome = assert_stream_matches_whole(case, 1)
        assert outcome.num_chunks == case["columnar"].num_events

    def test_chunk_covers_whole_trace(self):
        case = workload_case("HS")
        outcome = assert_stream_matches_whole(
            case, case["columnar"].num_events + 100
        )
        assert outcome.num_chunks == 1

    def test_chunk_exactly_trace_length(self):
        case = workload_case("BT")
        outcome = assert_stream_matches_whole(case, case["columnar"].num_events)
        assert outcome.num_chunks == 1

    def test_empty_trace(self):
        case = workload_case("HS")
        empty = case["columnar"].slice_events(0, 0)
        assert empty.num_events == 0
        chunks = list(iter_chunks(empty, 8))
        assert len(chunks) == 1  # one empty chunk, not zero chunks
        assert chunks[0].num_events == 0
        assert not chunks[0].first_warp_continued
        assert not chunks[0].last_warp_continues

        pipeline = StreamingPipeline(
            ARCHES,
            case["built"].kernel.num_registers,
            config=case["config"],
            static_widths=case["static_widths"],
        )
        for chunk in chunks:
            pipeline.feed(chunk)
        outcome = pipeline.finish(sm_engine="event")
        assert outcome.num_events == 0
        for arch in ARCHES:
            assert outcome.timing[arch.name].cycles == 0
            assert outcome.power[arch.name].instructions == 0

    def test_feed_after_finish_rejected(self):
        case = workload_case("HS")
        pipeline = StreamingPipeline(
            ARCHES[:1],
            case["built"].kernel.num_registers,
            config=case["config"],
        )
        chunks = list(iter_chunks(case["columnar"], 64))
        pipeline.feed(chunks[0])
        pipeline.finish(sm_engine="event")
        with pytest.raises(RuntimeError):
            pipeline.feed(chunks[0])

    def test_aggregates_only_mode_refuses_finish(self):
        case = workload_case("HS")
        pipeline = StreamingPipeline(
            ARCHES[:1],
            case["built"].kernel.num_registers,
            config=case["config"],
            collect_timing_ops=False,
        )
        for chunk in iter_chunks(case["columnar"], 64):
            pipeline.feed(chunk)
        assert pipeline.peak_bytes_in_flight > 0
        with pytest.raises(RuntimeError):
            pipeline.finish()


class TestRandomChunkGrids:
    """Any chunk size reproduces all four output types exactly."""

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_random_chunk_size_bit_identical(self, data):
        case = workload_case("HS")
        num_events = case["columnar"].num_events
        chunk_events = data.draw(
            st.integers(min_value=1, max_value=num_events + 3)
        )
        assert_stream_matches_whole(case, chunk_events)

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_random_chunk_size_divergent_workload(self, data):
        case = workload_case("BP")
        num_events = case["columnar"].num_events
        chunk_events = data.draw(
            st.integers(min_value=1, max_value=num_events + 3)
        )
        assert_stream_matches_whole(case, chunk_events)
