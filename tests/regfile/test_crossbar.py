"""Unit tests for the crossbar traffic model."""

import pytest

from repro.errors import ConfigError
from repro.regfile.crossbar import scalar_read_traffic, traffic_for_access


class TestTraffic:
    def test_uncompressed_moves_all_lanes(self):
        traffic = traffic_for_access(0, 32)
        assert traffic.data_bytes == 128
        assert traffic.total_bytes == 128 + 0

    def test_compressed_skips_prefix_bytes(self):
        traffic = traffic_for_access(3, 32)
        assert traffic.data_bytes == 32
        assert traffic.base_bytes == 3

    def test_scalar_read_moves_base_only(self):
        traffic = scalar_read_traffic(32)
        assert traffic.data_bytes == 0
        assert traffic.total_bytes == 4

    def test_divergent_register_travels_uncompressed(self):
        traffic = traffic_for_access(4, 32, divergent_register=True)
        assert traffic.data_bytes == 128

    def test_compression_disabled(self):
        traffic = traffic_for_access(3, 32, compression_enabled=False)
        assert traffic.data_bytes == 128

    def test_invalid_enc_rejected(self):
        with pytest.raises(ConfigError):
            traffic_for_access(5, 32)

    def test_invalid_warp_size_rejected(self):
        with pytest.raises(ConfigError):
            scalar_read_traffic(0)
