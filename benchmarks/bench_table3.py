"""Regenerate Table 3: compressor/decompressor area, delay and power.

Paper (40 nm, 1.4 GHz, including 1024-bit pipeline registers):
decompressor 7332 um^2 / 0.35 ns / 15.86 mW; compressor 11624 um^2 /
0.67 ns / 16.22 mW; per-SM overhead 0.32 W and 0.16 mm^2.
"""

from repro.experiments import table3
from repro.power.circuit import PAPER_TABLE3


def bench_table3(benchmark):
    data = benchmark(table3.compute)
    print()
    print(table3.render(data))

    for estimate in (data.decompressor, data.compressor):
        paper = PAPER_TABLE3[estimate.name]
        assert abs(estimate.area_um2 - paper["area_um2"]) / paper["area_um2"] < 0.15
        assert abs(estimate.power_mw - paper["power_mw"]) / paper["power_mw"] < 0.10
        assert abs(estimate.delay_ns - paper["delay_ns"]) < 0.05
    assert abs(data.per_sm_power_w - 0.32) < 0.05
    assert abs(data.per_sm_area_mm2 - 0.16) < 0.02


def bench_extras_compression_ratio(benchmark, shared_runner):
    """§5.3 text: average compression ratio ours 2.17 vs BDI 2.13 —
    both schemes track each other with ours slightly ahead."""
    from repro.experiments import extras

    data = benchmark.pedantic(
        extras.compute, args=(shared_runner,), rounds=1, iterations=1
    )
    print()
    print(extras.render(data))

    assert data.ours_ratio > data.bdi_ratio  # ours slightly ahead
    assert data.ours_ratio / data.bdi_ratio < 1.25
    # The §3.3 decompress-move overhead stays near the ~2% of prior work.
    assert data.decompress_move_overhead < 0.05
    # Our codec is cheaper than the BDI codec (paper: 19-30%).
    assert data.codec_cost_ratio <= 0.35
