"""Vectorized batch classification engine.

:func:`repro.scalar.tracker.classify_trace` replays a trace one
:class:`~repro.simt.trace.TraceEvent` at a time, paying Python dispatch
plus several tiny 32-lane numpy calls (``common_prefix_bytes``,
``compress_halves``) per dynamic instruction.  The enc-bit math is
embarrassingly data-parallel across dynamic instructions, so this
module computes all of it as whole-warp-stream array kernels instead:

* one ``(n_writes, warp_size)`` matrix of destination snapshots per
  warp, byte-prefix enc via XOR against lane 0 + OR-reduce across the
  lane axis (:func:`~repro.compression.gscalar.prefix_bytes_batch`),
* half-warp enc pairs via chunked reduces
  (:func:`~repro.compression.half.compress_halves_batch`),
* divergent-write encodings via the masked variant with the lane-mask
  matrix expanded from the integer active masks.

Only the cheap sequential sidecar state machine (register -> last
:class:`~repro.compression.encoding.RegisterEncoding`) remains a Python
loop, working over plain ints.  The output is **bit-identical** to the
per-event tracker: the same :class:`ClassifiedEvent` stream, the same
:class:`TrackerStatistics`, the same telemetry counters (the
differential suite in ``tests/scalar/test_batch.py`` pins this).

Both trace representations are accepted: :func:`classify_trace_batch`
takes the event form (reusing its event objects), while
:func:`classify_columnar_batch` runs straight off a
:class:`~repro.simt.trace.ColumnarTrace` — e.g. a cache hit from
:mod:`repro.simt.serialize` — materializing each event exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.compression.encoding import SCALAR_PREFIX, RegisterEncoding
from repro.compression.gscalar import (
    masked_prefix_bytes_batch,
    prefix_bytes_batch,
)
from repro.compression.half import compress_halves_batch
from repro.errors import TraceError
from repro.isa.opcodes import Opcode, OpCategory, category_of
from repro.obs.instrument import record_classified_warp
from repro.obs.telemetry import get_telemetry
from repro.scalar.eligibility import (
    ScalarClass,
    SourceRead,
    classify_instruction,
)
from repro.scalar.tracker import (
    HALF_GRANULARITY,
    ClassifiedEvent,
    RegisterStateTracker,
)
from repro.simt.trace import (
    ID_TO_OPCODE,
    ColumnarTrace,
    KernelTrace,
    TraceChunk,
    TraceEvent,
    WarpTrace,
)

#: Classification engines selectable via ``--classifier``.
CLASSIFIER_CHOICES = ("batch", "event")
DEFAULT_CLASSIFIER = "batch"


def _half_granularity(warp_size: int) -> int:
    """The tracker's half size in lanes (16 even for 64-thread warps)."""
    return min(HALF_GRANULARITY, max(1, warp_size // 2))


def _write_encodings(
    values: np.ndarray, masks: np.ndarray, warp_size: int
) -> list[RegisterEncoding]:
    """Destination-side sidecar encodings for one warp's register writes.

    ``values`` is the ``(n_writes, warp_size)`` snapshot matrix in
    write order and ``masks`` the writers' integer active masks.  Full
    writes get the §3.1 prefix + §4.3 half pairs; divergent writes get
    the §4.2 masked prefix with the BVR holding the writer's mask.  All
    heavy math is vectorized over the write axis; the returned list of
    :class:`RegisterEncoding` matches ``RegisterStateTracker``'s
    ``_full_write_state`` / ``_divergent_write_state`` element-wise.
    """
    count = values.shape[0]
    if count == 0:
        return []
    full_mask = (1 << warp_size) - 1
    mask_ints = masks.tolist()
    encodings: list[RegisterEncoding | None] = [None] * count
    # Registers are rewritten with the same value constantly (loop
    # counters, zeros, broadcast constants), so intern the frozen
    # encodings: repeated states share one object and skip the
    # dataclass __init__/__post_init__.  Equality semantics (and hence
    # downstream output) are unchanged — only identity is shared.
    interned: dict[tuple, RegisterEncoding] = {}

    full_rows = [i for i, mask in enumerate(mask_ints) if mask == full_mask]
    if full_rows:
        full_values = values[full_rows]
        enc = prefix_bytes_batch(full_values).tolist()
        halves = compress_halves_batch(
            full_values, granularity=_half_granularity(warp_size)
        )
        base = full_values[:, 0].tolist()
        enc_lo = halves.enc_lo.tolist()
        enc_hi = halves.enc_hi.tolist()
        base_lo = halves.base_lo.tolist()
        base_hi = halves.base_hi.tolist()
        full_scalar = halves.full_scalar.tolist()
        for j, i in enumerate(full_rows):
            key = (
                enc[j],
                base[j],
                enc_lo[j],
                enc_hi[j],
                base_lo[j],
                base_hi[j],
                full_scalar[j],
            )
            encoding = interned.get(key)
            if encoding is None:
                encoding = RegisterEncoding(
                    enc=enc[j],
                    base=base[j],
                    divergent=False,
                    enc_lo=enc_lo[j],
                    enc_hi=enc_hi[j],
                    base_lo=base_lo[j],
                    base_hi=base_hi[j],
                    full_scalar=full_scalar[j],
                )
                interned[key] = encoding
            encodings[i] = encoding

    divergent_rows = [
        i for i, mask in enumerate(mask_ints) if mask != full_mask
    ]
    if divergent_rows:
        divergent_values = values[divergent_rows]
        divergent_masks = masks[divergent_rows].astype(np.uint64)
        lane_masks = (
            (divergent_masks[:, None] >> np.arange(warp_size, dtype=np.uint64))
            & np.uint64(1)
        ).astype(bool)
        enc = masked_prefix_bytes_batch(divergent_values, lane_masks).tolist()
        for j, i in enumerate(divergent_rows):
            key = (enc[j], mask_ints[i])
            encoding = interned.get(key)
            if encoding is None:
                encoding = RegisterEncoding(
                    enc=enc[j], base=mask_ints[i], divergent=True
                )
                interned[key] = encoding
            encodings[i] = encoding
    return encodings  # type: ignore[return-value]


_UNCOMPRESSED = RegisterEncoding.uncompressed()

#: Pipeline category per opcode *value*, precomputed once (saves a
#: function call plus set probes per dynamic instruction in the sidecar
#: loop; keyed by the value string because str hashes are cached while
#: ``Enum.__hash__`` is a Python-level call).
_CATEGORY: dict[str, OpCategory] = {
    opcode.value: category_of(opcode) for opcode in Opcode
}


def _classify_events(
    events: list[TraceEvent],
    write_encodings: list[RegisterEncoding],
    warp_size: int,
    state: dict[int, RegisterEncoding] | None = None,
    read_cache: (
        dict[int, tuple[RegisterEncoding, int | None, SourceRead]] | None
    ) = None,
) -> list[ClassifiedEvent]:
    """The slim sequential sidecar loop over one warp's events.

    ``write_encodings`` carries the precomputed destination encoding of
    each register-writing event, in event order; everything left here
    is integer compares, dict lookups and object assembly.
    :func:`classify_source_read` and :func:`classify_instruction` are
    inlined (their results fold into the same pass that assembles the
    source tuple), and :class:`SourceRead` objects are reused while the
    source register's sidecar state is unchanged — both transparent to
    the output, which stays field-identical to the per-event tracker.

    ``state`` / ``read_cache`` (optional) resume a warp split across
    chunk boundaries: the chunked classifier passes the dicts carried
    from the previous fragment and this pass mutates them in place, so
    the next fragment continues exactly where this one stopped.  Fresh
    dicts (the default) give whole-warp behavior, unchanged.
    """
    full_mask = (1 << warp_size) - 1
    if state is None:
        state = {}
    state_get = state.get
    # register -> (encoding identity, reader mask or None, SourceRead);
    # reads of an unchanged register rebuild nothing.  The mask only
    # matters for divergently-written sources (§4.2's BVR comparison).
    if read_cache is None:
        read_cache = {}
    cache_get = read_cache.get
    classified: list[ClassifiedEvent] = []
    append = classified.append
    write_cursor = 0
    categories = _CATEGORY
    not_eligible = ScalarClass.NOT_ELIGIBLE
    half_scalar = ScalarClass.HALF_SCALAR
    divergent_scalar = ScalarClass.DIVERGENT_SCALAR
    ctrl = OpCategory.CTRL
    sfu = OpCategory.SFU
    mem = OpCategory.MEM

    for event in events:
        mask = event.active_mask
        divergent = mask != full_mask

        all_scalar = all_lo = all_hi = True
        sources = []
        sources_append = sources.append
        for register in event.src_regs:
            encoding = state_get(register, _UNCOMPRESSED)
            cached = cache_get(register)
            if (
                cached is not None
                and cached[0] is encoding
                and (cached[1] is None or cached[1] == (divergent, mask))
            ):
                read = cached[2]
                scalar = read.scalar_for_read
                lo_scalar = read.lo_scalar
                hi_scalar = read.hi_scalar
            else:
                # Inlined classify_source_read (§4.1/§4.2): plain int
                # compares against the sidecar state.
                if encoding.divergent:
                    scalar = (
                        divergent
                        and encoding.enc == SCALAR_PREFIX
                        and encoding.base == mask
                    )
                    lo_scalar = hi_scalar = False
                    cache_key = (divergent, mask)
                else:
                    scalar = encoding.enc == SCALAR_PREFIX
                    lo_scalar = encoding.enc_lo == SCALAR_PREFIX
                    hi_scalar = encoding.enc_hi == SCALAR_PREFIX
                    cache_key = None
                read = SourceRead(
                    register, encoding, scalar, lo_scalar, hi_scalar
                )
                read_cache[register] = (encoding, cache_key, read)
            sources_append(read)
            if not scalar:
                all_scalar = False
            if not lo_scalar:
                all_lo = False
            if not hi_scalar:
                all_hi = False
        sources_tuple = tuple(sources)

        # Inlined classify_instruction: same Figure 9 bucketing, with
        # the all()-over-sources folds already computed above.
        category = categories[event.opcode.value]
        lo_ok = hi_ok = False
        if category is ctrl or event.varying_special_src:
            scalar_class = not_eligible
        elif divergent:
            scalar_class = divergent_scalar if all_scalar else not_eligible
        elif all_scalar:
            if category is sfu:
                scalar_class = ScalarClass.SFU_SCALAR
            elif category is mem:
                scalar_class = ScalarClass.MEM_SCALAR
            else:
                scalar_class = ScalarClass.ALU_SCALAR
        elif all_lo or all_hi:
            scalar_class = half_scalar
            lo_ok = all_lo
            hi_ok = all_hi
        else:
            scalar_class = not_eligible

        dst_before: RegisterEncoding | None = None
        dst_after: RegisterEncoding | None = None
        needs_move = False
        if event.dst is not None and event.dst_values is not None:
            dst_before = state_get(event.dst, _UNCOMPRESSED)
            dst_after = write_encodings[write_cursor]
            write_cursor += 1
            if divergent:
                needs_move = not dst_before.divergent and dst_before.enc > 0
            state[event.dst] = dst_after

        append(
            ClassifiedEvent(
                event,
                scalar_class,
                divergent,
                sources_tuple,
                dst_after,
                dst_before,
                needs_move,
                lo_ok,
                hi_ok,
            )
        )
    return classified


def _classify_warp_events(
    events: list[TraceEvent], warp_size: int, num_registers: int
) -> list[ClassifiedEvent]:
    """Batch-classify one warp's event list."""
    if warp_size % 2 != 0:
        # Odd warp sizes cannot form half-register pairs; delegate to
        # the per-event tracker so error behavior stays identical.
        tracker = RegisterStateTracker(num_registers, warp_size)
        return [tracker.classify(event) for event in events]
    write_rows = [
        event.dst_values
        for event in events
        if event.dst is not None and event.dst_values is not None
    ]
    if write_rows:
        values = np.ascontiguousarray(np.stack(write_rows), dtype=np.uint32)
        masks = np.fromiter(
            (
                event.active_mask
                for event in events
                if event.dst is not None and event.dst_values is not None
            ),
            dtype=np.uint64,
            count=len(write_rows),
        )
        encodings = _write_encodings(values, masks, warp_size)
    else:
        encodings = []
    return _classify_events(events, encodings, warp_size)


def classify_trace_batch(
    trace: KernelTrace, num_registers: int
) -> list[list[ClassifiedEvent]]:
    """Batch-classify an event-form trace (fresh sidecar per warp).

    Drop-in replacement for
    :func:`repro.scalar.tracker.classify_trace`: identical output,
    identical telemetry, ~an order of magnitude less per-event work.
    The destination-encoding math runs as **one** whole-trace batch:
    every warp's register writes are stacked into a single matrix so
    the array kernels amortize their dispatch over the full launch
    (per-warp sidecar replay is unaffected — each warp still gets a
    fresh state machine over its own slice of the encodings).
    """
    if num_registers < 0:
        raise TraceError(f"num_registers must be >= 0, got {num_registers}")
    telemetry = get_telemetry()
    warp_size = trace.warp_size
    classified: list[list[ClassifiedEvent]] = []
    with telemetry.span(
        f"classify:{trace.kernel_name}", cat="kernel", kernel=trace.kernel_name
    ):
        if warp_size % 2 != 0:
            for warp in trace.warps:
                events = _classify_warp_events(
                    warp.events, warp_size, num_registers
                )
                classified.append(events)
                if telemetry.enabled:
                    record_classified_warp(telemetry, events, warp_size)
            return classified

        write_rows: list[np.ndarray] = []
        write_masks: list[int] = []
        warp_write_counts: list[int] = []
        for warp in trace.warps:
            start = len(write_rows)
            for event in warp.events:
                if event.dst is not None and event.dst_values is not None:
                    write_rows.append(event.dst_values)
                    write_masks.append(event.active_mask)
            warp_write_counts.append(len(write_rows) - start)
        if write_rows:
            encodings = _write_encodings(
                np.ascontiguousarray(np.stack(write_rows), dtype=np.uint32),
                np.array(write_masks, dtype=np.uint64),
                warp_size,
            )
        else:
            encodings = []

        cursor = 0
        for warp, count in zip(trace.warps, warp_write_counts):
            events = _classify_events(
                warp.events, encodings[cursor : cursor + count], warp_size
            )
            cursor += count
            classified.append(events)
            if telemetry.enabled:
                record_classified_warp(telemetry, events, warp_size)
    return classified


def classify_columnar_batch(
    columnar: ColumnarTrace, num_registers: int
) -> tuple[KernelTrace, list[list[ClassifiedEvent]]]:
    """Batch-classify straight off the columnar arrays.

    Returns ``(trace, classified)`` where ``trace`` is the event form
    materialized exactly once — each :class:`TraceEvent` is shared
    between the returned trace and the classified stream, and snapshot
    rows are views into the columnar value matrix (nothing downstream
    mutates them), so a cache hit pays one object per event instead of
    a reconstruct-then-classify double pass.
    """
    if num_registers < 0:
        raise TraceError(f"num_registers must be >= 0, got {num_registers}")
    warp_size = columnar.warp_size
    telemetry = get_telemetry()
    trace = KernelTrace(kernel_name=columnar.kernel_name, warp_size=warp_size)
    classified: list[list[ClassifiedEvent]] = []

    opcode_ids = columnar.opcode_ids.tolist()
    dst = columnar.dst.tolist()
    mask_ints = columnar.masks.tolist()
    blocks = columnar.blocks.tolist()
    varying = columnar.varying.tolist()
    scalar_nonreg = columnar.scalar_nonreg.tolist()
    src_offsets = columnar.src_offsets.tolist()
    src_flat = columnar.src_flat.tolist()
    values_index = columnar.values_index.tolist()
    addr_index = columnar.addr_index.tolist()
    values_matrix = columnar.values
    addresses_matrix = columnar.addresses
    lane_limit = 1 << warp_size

    if warp_size % 2 == 0 and columnar.num_events:
        # One whole-trace encoding batch: the write rows of every warp
        # in one matrix, sliced back per warp below via searchsorted.
        write_positions_all = np.flatnonzero(
            (columnar.dst >= 0) & (columnar.values_index >= 0)
        )
        if write_positions_all.size:
            all_encodings = _write_encodings(
                np.ascontiguousarray(
                    values_matrix[columnar.values_index[write_positions_all]],
                    dtype=np.uint32,
                ),
                columnar.masks[write_positions_all],
                warp_size,
            )
        else:
            all_encodings = []
    else:
        write_positions_all = np.empty(0, dtype=np.int64)
        all_encodings = []

    with telemetry.span(
        f"classify:{columnar.kernel_name}",
        cat="kernel",
        kernel=columnar.kernel_name,
    ):
        for warp_id, segment in columnar.warp_slices():
            events: list[TraceEvent] = []
            for position in range(segment.start, segment.stop):
                mask = mask_ints[position]
                if mask >= lane_limit:
                    raise TraceError(
                        f"event mask {mask:#x} wider than warp size "
                        f"{warp_size}"
                    )
                value_row = values_index[position]
                addr_row = addr_index[position]
                events.append(
                    TraceEvent(
                        opcode=ID_TO_OPCODE[opcode_ids[position]],
                        dst=None if dst[position] < 0 else dst[position],
                        src_regs=tuple(
                            src_flat[
                                src_offsets[position]:src_offsets[position + 1]
                            ]
                        ),
                        active_mask=mask,
                        block_id=blocks[position],
                        dst_values=values_matrix[value_row]
                        if value_row >= 0
                        else None,
                        addresses=addresses_matrix[addr_row]
                        if addr_row >= 0
                        else None,
                        varying_special_src=varying[position],
                        scalar_nonreg_srcs=scalar_nonreg[position],
                    )
                )
            warp = WarpTrace(
                warp_id=warp_id, warp_size=warp_size, events=events
            )
            trace.warps.append(warp)

            if warp_size % 2 != 0:
                classified_warp = _classify_warp_events(
                    events, warp_size, num_registers
                )
            else:
                lo = int(
                    np.searchsorted(write_positions_all, segment.start, "left")
                )
                hi = int(
                    np.searchsorted(write_positions_all, segment.stop, "left")
                )
                classified_warp = _classify_events(
                    events, all_encodings[lo:hi], warp_size
                )
            classified.append(classified_warp)
            if telemetry.enabled:
                record_classified_warp(telemetry, classified_warp, warp_size)
    return trace, classified


class ClassifierCarry:
    """Per-warp sidecar state threaded between trace chunks.

    The batch classifier's only sequential state is per-warp: the
    register -> :class:`RegisterEncoding` sidecar map (BVR/EBR contents)
    and the identity-keyed read cache of :func:`_classify_events`, plus
    the warp's last scalar class (telemetry's consecutive-class
    transition counter spans chunk boundaries).  The carry keys them by
    *global* warp index; completed warps are dropped eagerly so the
    carry holds at most one split warp between chunks.  Odd warp sizes
    delegate to the per-event tracker, whose whole state machine is
    carried instead.
    """

    def __init__(self) -> None:
        self.states: dict[int, dict[int, RegisterEncoding]] = {}
        self.read_caches: dict[
            int, dict[int, tuple[RegisterEncoding, int | None, SourceRead]]
        ] = {}
        self.trackers: dict[int, RegisterStateTracker] = {}
        self.last_class: dict[int, str | None] = {}


def classify_columnar_chunk(
    chunk: TraceChunk,
    num_registers: int,
    carry: ClassifierCarry,
) -> list[list[ClassifiedEvent]]:
    """Batch-classify one :class:`~repro.simt.trace.TraceChunk`.

    The chunk-streaming counterpart of :func:`classify_columnar_batch`:
    same per-chunk whole-batch encoding math, same sequential sidecar
    loop — but warps cut by a chunk boundary resume from the carried
    ``state``/``read_cache`` dicts instead of starting fresh, so
    concatenating every chunk's fragments reproduces the whole-trace
    classified stream bit-for-bit.  Returns one event-fragment list per
    warp present in the chunk (split warps contribute one fragment per
    chunk they span); the event form is *not* accumulated — per-event
    Python objects live only as long as the chunk's fragments do.
    """
    if num_registers < 0:
        raise TraceError(f"num_registers must be >= 0, got {num_registers}")
    columnar = chunk.columnar
    warp_size = columnar.warp_size
    telemetry = get_telemetry()
    classified: list[list[ClassifiedEvent]] = []

    opcode_ids = columnar.opcode_ids.tolist()
    dst = columnar.dst.tolist()
    mask_ints = columnar.masks.tolist()
    blocks = columnar.blocks.tolist()
    varying = columnar.varying.tolist()
    scalar_nonreg = columnar.scalar_nonreg.tolist()
    src_offsets = columnar.src_offsets.tolist()
    src_flat = columnar.src_flat.tolist()
    values_index = columnar.values_index.tolist()
    addr_index = columnar.addr_index.tolist()
    values_matrix = columnar.values
    addresses_matrix = columnar.addresses
    lane_limit = 1 << warp_size

    if warp_size % 2 == 0 and columnar.num_events:
        write_positions_all = np.flatnonzero(
            (columnar.dst >= 0) & (columnar.values_index >= 0)
        )
        if write_positions_all.size:
            all_encodings = _write_encodings(
                np.ascontiguousarray(
                    values_matrix[columnar.values_index[write_positions_all]],
                    dtype=np.uint32,
                ),
                columnar.masks[write_positions_all],
                warp_size,
            )
        else:
            all_encodings = []
    else:
        write_positions_all = np.empty(0, dtype=np.int64)
        all_encodings = []

    num_warps = columnar.num_warps
    for local, (_, segment) in enumerate(columnar.warp_slices()):
        global_warp = chunk.warp_start + local
        continued = local == 0 and chunk.first_warp_continued
        continues = local == num_warps - 1 and chunk.last_warp_continues
        events: list[TraceEvent] = []
        for position in range(segment.start, segment.stop):
            mask = mask_ints[position]
            if mask >= lane_limit:
                raise TraceError(
                    f"event mask {mask:#x} wider than warp size {warp_size}"
                )
            value_row = values_index[position]
            addr_row = addr_index[position]
            events.append(
                TraceEvent(
                    opcode=ID_TO_OPCODE[opcode_ids[position]],
                    dst=None if dst[position] < 0 else dst[position],
                    src_regs=tuple(
                        src_flat[
                            src_offsets[position]:src_offsets[position + 1]
                        ]
                    ),
                    active_mask=mask,
                    block_id=blocks[position],
                    dst_values=values_matrix[value_row]
                    if value_row >= 0
                    else None,
                    addresses=addresses_matrix[addr_row]
                    if addr_row >= 0
                    else None,
                    varying_special_src=varying[position],
                    scalar_nonreg_srcs=scalar_nonreg[position],
                )
            )

        if warp_size % 2 != 0:
            tracker = carry.trackers.pop(global_warp, None) if continued else None
            if tracker is None:
                tracker = RegisterStateTracker(num_registers, warp_size)
            fragment = [tracker.classify(event) for event in events]
            if continues:
                carry.trackers[global_warp] = tracker
        else:
            state = carry.states.pop(global_warp, None) if continued else None
            read_cache = (
                carry.read_caches.pop(global_warp, None) if continued else None
            )
            if state is None:
                state = {}
            if read_cache is None:
                read_cache = {}
            lo = int(
                np.searchsorted(write_positions_all, segment.start, "left")
            )
            hi = int(
                np.searchsorted(write_positions_all, segment.stop, "left")
            )
            fragment = _classify_events(
                events, all_encodings[lo:hi], warp_size, state, read_cache
            )
            if continues:
                carry.states[global_warp] = state
                carry.read_caches[global_warp] = read_cache
        classified.append(fragment)
        if telemetry.enabled:
            previous = (
                carry.last_class.pop(global_warp, None) if continued else None
            )
            last = record_classified_warp(
                telemetry, fragment, warp_size, previous_class=previous
            )
            if continues:
                carry.last_class[global_warp] = last
    return classified


def classify_trace_with(
    trace: KernelTrace, num_registers: int, classifier: str = DEFAULT_CLASSIFIER
) -> list[list[ClassifiedEvent]]:
    """Dispatch to the selected classification engine.

    ``"batch"`` (the default) runs the vectorized engine; ``"event"``
    runs the original per-event tracker — kept for differential
    checking (``--classifier=event``).
    """
    if classifier == "batch":
        return classify_trace_batch(trace, num_registers)
    if classifier == "event":
        from repro.scalar.tracker import classify_trace

        return classify_trace(trace, num_registers)
    raise ValueError(
        f"unknown classifier {classifier!r}; known: {', '.join(CLASSIFIER_CHOICES)}"
    )
