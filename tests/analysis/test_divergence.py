"""Tests for Figure 1 divergence statistics."""

import pytest

from repro.analysis.divergence import divergence_stats
from repro.scalar.tracker import classify_trace
from repro.simt import MemoryImage

from tests.conftest import run_one_warp


def stats_for(kernel):
    trace = run_one_warp(kernel, MemoryImage())
    return divergence_stats(classify_trace(trace, kernel.num_registers))


class TestDivergenceStats:
    def test_convergent_kernel(self, saxpy_kernel, simple_memory):
        trace = run_one_warp(saxpy_kernel, simple_memory)
        stats = divergence_stats(classify_trace(trace, saxpy_kernel.num_registers))
        assert stats.divergent_fraction == 0.0
        assert stats.divergent_scalar_fraction == 0.0

    def test_divergent_kernel_counts(self, divergent_kernel):
        stats = stats_for(divergent_kernel)
        assert stats.divergent_instructions > 0
        assert 0 < stats.divergent_fraction < 1

    def test_divergent_scalar_subset(self, divergent_kernel):
        stats = stats_for(divergent_kernel)
        assert stats.divergent_scalar_instructions <= stats.divergent_instructions

    def test_scalar_share_of_divergent(self, divergent_kernel):
        stats = stats_for(divergent_kernel)
        if stats.divergent_instructions:
            expected = (
                stats.divergent_scalar_instructions / stats.divergent_instructions
            )
            assert stats.scalar_share_of_divergent == pytest.approx(expected)

    def test_empty_trace(self):
        stats = divergence_stats([])
        assert stats.divergent_fraction == 0.0
        assert stats.scalar_share_of_divergent == 0.0
