"""Evaluation-text numbers not in a figure or table.

Regenerates the loose quantitative claims of §3.3/§5.1/§5.3:

* average compression ratio: ours 2.17 vs BDI 2.13,
* our codec's synthesized cost is 19-30% of the BDI codec's,
* the decompress-move overhead stays near the ~2% prior work reports,
  and compiler-assisted liveness "may further reduce the overhead to
  less than 2%" (§3.3),
* compile-time scalarization captures notably fewer scalar
  instructions than G-Scalar's dynamic detection (§6: 24% fewer),
* the BVR/EBR sidecar adds ~3% to the register file's area, and
* a sidecar access costs 5.2% of a full vector-register access.

Beyond the paper, the table also reports the statically-compressed RF
design point (ROADMAP architecture-variants item (a)): how many
registers the compile-time width analysis proves narrow, and the
register-file + crossbar energy it saves relative to the baseline with
*zero* runtime detection hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.stats import compare_trace
from repro.compression.wide import address_width_study
from repro.config import ArchitectureConfig
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table
from repro.power.circuit import compressor_estimate, decompressor_estimate
from repro.power.rf_techniques import _BDI_CODEC_FACTOR
from repro.regfile.layout import SIDECAR_ENERGY_FRACTION
from repro.scalar.architectures import process_classified, processed_statistics
from repro.scalar.compiler import MoveElisionAnalysis, StaticScalarization
from repro.scalar.tracker import trace_statistics

#: Sidecar storage per vector register with half-register support:
#: 2 x (32-bit BVR + 4-bit EBR) + D + FS bits over 1024 data bits.
SIDECAR_AREA_FRACTION = (2 * (32 + 4) + 2) / 1024.0


@dataclass
class ExtrasData:
    ours_ratio: float
    bdi_ratio: float
    decompress_move_overhead: float
    decompress_move_overhead_compiler: float
    static_scalar_fraction: float
    dynamic_scalar_fraction: float
    address_savings_32bit: float
    address_savings_64bit: float
    codec_cost_ratio: float
    sidecar_area_fraction: float
    sidecar_energy_fraction: float
    static_narrow_fraction: float
    static_rf_savings: float

    @property
    def compiler_shortfall(self) -> float:
        """How much less the compiler captures vs dynamic detection."""
        if self.dynamic_scalar_fraction == 0:
            return 0.0
        return 1.0 - self.static_scalar_fraction / self.dynamic_scalar_fraction


def compute(runner: ExperimentRunner) -> ExtrasData:
    """Aggregate the §5 text numbers over all benchmarks."""
    ratio_ours_sum = 0.0
    ratio_bdi_sum = 0.0
    move_overhead_sum = 0.0
    move_overhead_compiler_sum = 0.0
    static_scalar_sum = 0.0
    dynamic_scalar_sum = 0.0
    addr32_sum = 0.0
    addr64_sum = 0.0
    narrow_sum = 0.0
    static_rf_savings_sum = 0.0
    gscalar = ArchitectureConfig.gscalar()
    baseline = ArchitectureConfig.baseline()
    static_arch = ArchitectureConfig.static_compress()
    names = runner.benchmark_names()
    for abbr in names:
        run = runner.run(abbr)
        comparison = compare_trace(run.trace)
        ratio_ours_sum += comparison.ours_ratio
        ratio_bdi_sum += comparison.bdi_ratio
        stats = trace_statistics(run.classified)
        if stats.total_instructions:
            move_overhead_sum += stats.decompress_moves / stats.total_instructions
            elision = MoveElisionAnalysis(run.built.kernel)
            with_compiler = processed_statistics(
                process_classified(
                    run.classified, gscalar, run.trace.warp_size, move_elision=elision
                )
            )
            move_overhead_compiler_sum += (
                with_compiler.extra_instructions / stats.total_instructions
            )
        dynamic_scalar_sum += stats.eligible_fraction
        static_scalar_sum += StaticScalarization(
            run.built.kernel
        ).dynamic_static_scalar_fraction(run.trace)
        width_study = address_width_study(run.trace)
        addr32_sum += width_study.savings_32bit
        addr64_sum += width_study.savings_64bit
        register_enc = runner.static_widths(abbr)
        if register_enc:
            narrow_sum += sum(1 for enc in register_enc if enc > 0) / len(register_enc)
        base_power = runner.power(abbr, baseline).breakdown
        static_power = runner.power(abbr, static_arch).breakdown
        base_rf = base_power.rf_pj + base_power.crossbar_pj
        if base_rf:
            static_rf = static_power.rf_pj + static_power.crossbar_pj
            static_rf_savings_sum += 1.0 - static_rf / base_rf
    count = max(1, len(names))
    compressor = compressor_estimate()
    decompressor = decompressor_estimate()
    our_codec_mw = compressor.power_mw + decompressor.power_mw
    bdi_codec_mw = our_codec_mw * _BDI_CODEC_FACTOR
    return ExtrasData(
        ours_ratio=ratio_ours_sum / count,
        bdi_ratio=ratio_bdi_sum / count,
        decompress_move_overhead=move_overhead_sum / count,
        decompress_move_overhead_compiler=move_overhead_compiler_sum / count,
        static_scalar_fraction=static_scalar_sum / count,
        dynamic_scalar_fraction=dynamic_scalar_sum / count,
        address_savings_32bit=addr32_sum / count,
        address_savings_64bit=addr64_sum / count,
        codec_cost_ratio=our_codec_mw / bdi_codec_mw,
        sidecar_area_fraction=SIDECAR_AREA_FRACTION,
        sidecar_energy_fraction=SIDECAR_ENERGY_FRACTION,
        static_narrow_fraction=narrow_sum / count,
        static_rf_savings=static_rf_savings_sum / count,
    )


def render(data: ExtrasData) -> str:
    """The §5 extras as a text table."""
    rows = [
        ("avg compression ratio (ours)", f"{data.ours_ratio:.2f}", "2.17"),
        ("avg compression ratio (BDI)", f"{data.bdi_ratio:.2f}", "2.13"),
        (
            "decompress-move overhead",
            f"{100 * data.decompress_move_overhead:.1f}%",
            "~2%",
        ),
        (
            "... with compiler-assisted elision",
            f"{100 * data.decompress_move_overhead_compiler:.1f}%",
            "<2%",
        ),
        (
            "compile-time scalarization vs G-Scalar",
            f"-{100 * data.compiler_shortfall:.0f}%",
            "-24% (AAA game traces)",
        ),
        (
            "address-register byte savings, 32b -> 64b",
            f"{100 * data.address_savings_32bit:.0f}% -> "
            f"{100 * data.address_savings_64bit:.0f}%",
            "more with 64-bit (direction)",
        ),
        (
            "our codec cost vs BDI codec",
            f"{100 * data.codec_cost_ratio:.0f}%",
            "19-30%",
        ),
        (
            "RF area added by BVR/EBR/D/FS",
            f"{100 * data.sidecar_area_fraction:.1f}%",
            "~3% (7% with half pairs)",
        ),
        (
            "sidecar access energy vs full access",
            f"{100 * data.sidecar_energy_fraction:.1f}%",
            "5.2%",
        ),
        (
            "static-compress: registers proven narrow",
            f"{100 * data.static_narrow_fraction:.0f}%",
            "n/a (ROADMAP variant a)",
        ),
        (
            "static-compress: RF+crossbar energy vs baseline",
            f"-{100 * data.static_rf_savings:.1f}%",
            "n/a (no detector energy)",
        ),
    ]
    return render_table(
        ["quantity", "measured", "paper"],
        rows,
        title="Evaluation-text extras (§3.3 / §5.1 / §5.3)",
    )
