"""Crossbar traffic model.

The 16x16 crossbar between banks and operand collectors is adapted
(Figure 4) so bytes travel in rotated order at no extra switch cost;
the win is that prefix bytes of a compressed register are simply never
sent (§3.2), shrinking crossbar switching energy proportionally to the
bytes moved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CrossbarTraffic:
    """Bytes moved over the crossbar for one register access."""

    data_bytes: int
    base_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.base_bytes


def traffic_for_access(
    enc: int,
    warp_size: int,
    divergent_register: bool = False,
    compression_enabled: bool = True,
) -> CrossbarTraffic:
    """Crossbar bytes for reading/writing one vector register.

    ``enc`` is the register's prefix length; divergent-written registers
    travel uncompressed.  The base value travels from the BVR straight
    to the decompressor at the operand collector, bypassing the wide
    data crossbar, so only non-prefix data bytes plus the (at most
    4-byte) base count.
    """
    if not 0 <= enc <= 4:
        raise ConfigError(f"enc must be 0..4, got {enc}")
    if warp_size < 1:
        raise ConfigError(f"warp_size must be >= 1, got {warp_size}")
    if not compression_enabled or divergent_register:
        return CrossbarTraffic(data_bytes=warp_size * 4, base_bytes=0)
    return CrossbarTraffic(data_bytes=(4 - enc) * warp_size, base_bytes=enc)


def scalar_read_traffic(warp_size: int) -> CrossbarTraffic:
    """A scalar operand moves only its 4-byte base value."""
    if warp_size < 1:
        raise ConfigError(f"warp_size must be >= 1, got {warp_size}")
    return CrossbarTraffic(data_bytes=0, base_bytes=4)
