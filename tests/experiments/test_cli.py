"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCli:
    def test_static_tables_run(self, capsys):
        assert main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out
        assert main(["table2"]) == 0
        assert "backprop" in capsys.readouterr().out
        assert main(["table3"]) == 0
        assert "compressor" in capsys.readouterr().out

    def test_figure_at_tiny_scale(self, capsys):
        assert main(["fig1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "LBM" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_experiment_list_is_complete(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig8", "fig9", "fig10", "fig11", "fig12",
            "table1", "table2", "table3", "extras", "scorecard", "suite",
        }
