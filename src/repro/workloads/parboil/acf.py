"""``tpacf`` (ACF) proxy.

Signature reproduced: the angular correlation function — per-thread dot
products between galaxy coordinates (vector float math with ``sqrt``
and ``lg2``), followed by a bin search against shared bin-edge
constants loaded through broadcast addresses; the bin-edge comparison
diverges and its bin-advance chain is scalar with respect to the mask
(divergent scalar).
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    INPUT_A,
    INPUT_B,
    OUTPUT_A,
    PARAMS_BASE,
    load_broadcast,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 1717

_BIN_EDGES = 0x70_0000


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the ACF proxy at the given scale."""
    pairs = 2 * scale.inner_iterations
    b = KernelBuilder("tpacf")
    tid = b.tid()
    bin_scale = load_broadcast(b, PARAMS_BASE)
    x = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    histogram = b.mov(0)

    with b.for_range(0, pairs) as pair:
        other_addr = b.imad(pair, 4, INPUT_B)  # scalar address
        other = b.ld_global(other_addr)  # MEM scalar
        dot = b.fmul(x, other)  # vector
        dot = b.fmin(dot, b.fimm(0.9999), dst=dot)
        angle_sq = b.fsub(b.fimm(1.0), b.fmul(dot, dot))
        angle = b.sqrt(angle_sq)  # vector SFU
        log_angle = b.lg2(b.fadd(angle, b.fimm(1.0e-6)))  # vector SFU
        edge = b.ld_global(b.imad(pair, 4, _BIN_EDGES))  # MEM scalar
        above = b.fsetgt(log_angle, edge)
        with b.if_(above) as branch:
            # Bin advance over shared constants (divergent scalar).
            step = b.fmul(bin_scale, b.fimm(2.0))
            shifted = b.fadd(step, edge)
            bin_bump = b.f2i(shifted)
            histogram = b.iadd(histogram, bin_bump, dst=histogram)
            with branch.else_():
                histogram = b.iadd(histogram, 1, dst=histogram)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), histogram)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    memory.bind_array(
        INPUT_A, datagen.narrow_floats(total_threads, 0.5, 0.45, _SEED)
    )
    memory.bind_array(
        INPUT_B, datagen.narrow_floats(pairs + 1, 0.5, 0.45, _SEED + 1)
    )
    memory.bind_array(
        _BIN_EDGES, datagen.narrow_floats(pairs + 1, -0.1, 0.07, _SEED + 2)
    )
    memory.bind_array(PARAMS_BASE, np.array([1.5], dtype=np.float32))
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="angular correlation binning with edge-compare divergence",
    )
