"""Tests for the runner's architecture-interpretation engine switch."""

import pytest

from repro.config import ArchitectureConfig
from repro.experiments.runner import ExperimentRunner

ARCHES = (
    ArchitectureConfig.baseline(),
    ArchitectureConfig.alu_scalar(),
    ArchitectureConfig.gscalar(),
    ArchitectureConfig.static_compress(),
)


@pytest.fixture(scope="module")
def batch_runner():
    return ExperimentRunner(scale="tiny")


@pytest.fixture(scope="module")
def event_runner():
    return ExperimentRunner(scale="tiny", arch_engine="event")


class TestEngineParity:
    @pytest.mark.parametrize("abbr", ("BP", "HS"))
    def test_power_reports_identical(self, batch_runner, event_runner, abbr):
        for arch in ARCHES:
            assert batch_runner.power(abbr, arch) == event_runner.power(
                abbr, arch
            )

    def test_timing_identical(self, batch_runner, event_runner):
        for arch in ARCHES:
            batch = batch_runner.timing("BP", arch)
            event = event_runner.timing("BP", arch)
            assert batch.cycles == event.cycles
            assert batch.instructions == event.instructions


class TestEngineSelection:
    def test_default_engine_is_batch(self, batch_runner):
        assert batch_runner.arch_engine == "batch"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(scale="tiny", arch_engine="turbo")

    def test_columns_cached_per_architecture(self, batch_runner):
        arch = ArchitectureConfig.gscalar()
        first = batch_runner.processed_columns("BP", arch)
        second = batch_runner.processed_columns("BP", arch)
        assert first is second


class TestStaticCompressRunner:
    """The runner feeds the width analysis into the fifth architecture."""

    ARCH = ArchitectureConfig.static_compress()

    def test_widths_cached_per_benchmark(self, batch_runner):
        first = batch_runner.static_widths("BP")
        second = batch_runner.static_widths("BP")
        assert first is second
        assert any(enc > 0 for enc in first)

    def test_static_power_differs_from_baseline(self, batch_runner):
        base = batch_runner.power("BP", ArchitectureConfig.baseline())
        static = batch_runner.power("BP", self.ARCH)
        assert static.breakdown.rf_pj < base.breakdown.rf_pj
        # No runtime detection: the only codec energy is decompression.
        assert static.breakdown.compression_pj > 0


class TestEngineKeyedSidecars:
    def test_engines_never_share_result_sidecars(self, tmp_path):
        arch = ArchitectureConfig.gscalar()
        batch = ExperimentRunner(scale="tiny", cache_dir=tmp_path)
        batch.power("HS", arch)

        event_cold = ExperimentRunner(
            scale="tiny", cache_dir=tmp_path, arch_engine="event"
        )
        event_cold.power("HS", arch)
        assert event_cold.stats.counters.get("result_cache_hits", 0) == 0

        event_warm = ExperimentRunner(
            scale="tiny", cache_dir=tmp_path, arch_engine="event"
        )
        event_warm.power("HS", arch)
        assert event_warm.stats.counters.get("result_cache_hits", 0) == 1
