"""Pipeline instrumentation: recorded metrics agree with ground truth."""

import pytest

from repro.compression.stats import compare_trace
from repro.obs.telemetry import Telemetry, telemetry_session
from repro.scalar.tracker import classify_trace
from repro.simt.executor import run_kernel
from repro.workloads.registry import build_workload


def _run_instrumented(abbr: str, scale: str = "tiny"):
    built = build_workload(abbr, scale)
    with telemetry_session() as telemetry:
        trace = run_kernel(built.kernel, built.launch, built.memory)
        classified = classify_trace(trace, built.kernel.num_registers)
    return telemetry, trace, classified


class TestExecutorMetrics:
    def test_instruction_mix_matches_trace(self):
        telemetry, trace, _ = _run_instrumented("BP")
        total_events = sum(len(warp.events) for warp in trace.warps)
        recorded = sum(telemetry.counters_named("instructions").values())
        assert recorded == total_events

    def test_warp_instruction_histogram_covers_every_warp(self):
        telemetry, trace, _ = _run_instrumented("BP")
        histogram = telemetry.histogram("warp_instructions")
        assert sum(histogram.values()) == len(trace.warps)
        assert sum(v * c for v, c in histogram.items()) == sum(
            len(warp.events) for warp in trace.warps
        )

    def test_stack_depth_recorded_per_warp(self):
        telemetry, trace, _ = _run_instrumented("BP")
        histogram = telemetry.histogram("reconvergence_stack_depth")
        assert sum(histogram.values()) == len(trace.warps)
        assert min(histogram) >= 1

    def test_kernel_and_warp_spans_recorded(self):
        telemetry, trace, _ = _run_instrumented("BP")
        cats = {span.cat for span in telemetry.spans}
        assert "kernel" in cats
        assert "warp" in cats


class TestTrackerMetrics:
    def test_scalar_class_totals_match_classification(self):
        telemetry, _, classified = _run_instrumented("BP")
        by_class: dict[str, int] = {}
        for warp_events in classified:
            for item in warp_events:
                name = item.scalar_class.value
                by_class[name] = by_class.get(name, 0) + 1
        recorded = {
            dict(labels)["class"]: value
            for labels, value in telemetry.counters_named("scalar_class").items()
        }
        assert recorded == by_class

    def test_transitions_sum_to_events_minus_warps(self):
        telemetry, _, classified = _run_instrumented("BP")
        total = sum(len(w) for w in classified)
        transitions = sum(
            telemetry.counters_named("scalar_class_transitions").values()
        )
        nonempty_warps = sum(1 for w in classified if w)
        assert transitions == total - nonempty_warps

    @pytest.mark.parametrize("abbr", ["BP", "HS"])
    def test_enc_prefix_agrees_with_compression_stats(self, abbr):
        # The tracker-side enc distribution and the standalone
        # compression comparison walk the same full register writes
        # with the same byte-wise prefix rule, so they must agree
        # exactly (the Figure 8 cross-check).
        telemetry, trace, _ = _run_instrumented(abbr)
        comparison = compare_trace(trace)
        recorded = {
            int(dict(labels)["enc"]): int(value)
            for labels, value in telemetry.counters_named("enc_prefix").items()
        }
        expected = {
            enc: count for enc, count in comparison.enc_histogram.items() if count
        }
        assert recorded == expected
        assert sum(recorded.values()) == comparison.registers_seen

    def test_bytes_saved_follow_enc_distribution(self):
        telemetry, trace, _ = _run_instrumented("BP")
        for labels, value in telemetry.counters_named(
            "compression_bytes_saved"
        ).items():
            enc = int(dict(labels)["enc"])
            count = telemetry.counter_value("enc_prefix", enc=enc)
            assert value == count * enc * trace.warp_size


class TestPipelineMetrics:
    @pytest.fixture(scope="class")
    def profiled(self):
        from repro.experiments.runner import ExperimentRunner, paper_architectures

        with telemetry_session() as telemetry:
            runner = ExperimentRunner(scale="tiny")
            runner.run("BP")
            for arch in paper_architectures():
                runner.power("BP", arch)
        return telemetry

    def test_bank_activations_cover_all_ops(self, profiled):
        series = profiled.counters_named("regfile_bank_activations")
        ops = {dict(labels)["op"] for labels in series}
        assert {"read", "write"} <= ops

    def test_energy_counters_per_component_and_arch(self, profiled):
        series = profiled.counters_named("energy_pj")
        arches = {dict(labels)["arch"] for labels in series}
        components = {dict(labels)["component"] for labels in series}
        assert arches == {
            "baseline", "alu_scalar", "gscalar_no_divergent", "gscalar"
        }
        assert "rf" in components and "fds" in components

    def test_runner_stats_share_the_registry(self, profiled):
        events = profiled.counters_named("runner_events")
        assert any(
            dict(labels).get("event") == "trace_executions" for labels in events
        )
        stages = profiled.counters_named("runner_stage_seconds")
        assert any(
            dict(labels).get("stage") == "classify" for labels in stages
        )

    def test_gscalar_compressor_counters(self):
        import numpy as np

        from repro.compression.gscalar import compress, decompress

        with telemetry_session() as telemetry:
            scalar = compress(np.full(32, 7, dtype=np.uint32))
            decompress(scalar)
        assert telemetry.counter_value("gscalar_compressions", enc=4) == 1
        assert telemetry.counter_value("bvr_accesses", op="write") == 1
        assert telemetry.counter_value("ebr_accesses", op="write") == 1
        assert telemetry.counter_value("gscalar_decompressions", enc=4) == 1
        assert telemetry.counter_value("bvr_accesses", op="read") == 1
        assert telemetry.counter_value("compressor_bytes_saved", enc=4) == 4 * 32

    def test_register_file_bank_activations(self):
        import numpy as np

        from repro.regfile.registerfile import RegisterFile

        regfile = RegisterFile()
        with telemetry_session() as telemetry:
            regfile.write(0, 3, np.full(32, 7, dtype=np.uint32))
            regfile.read(0, 3)
        bank = regfile.locate(0, 3).bank
        assert telemetry.counter_value(
            "regfile_bank_activations", bank=bank, op="write"
        ) == 1
        assert telemetry.counter_value(
            "regfile_bank_activations", bank=bank, op="read"
        ) == 1


class TestDeterminism:
    def test_figure_json_identical_with_and_without_telemetry(self, tmp_path):
        from repro.cli import main

        plain = tmp_path / "plain.json"
        instrumented = tmp_path / "instrumented.json"
        assert main(["fig1", "--scale", "tiny", "--json", str(plain)]) == 0
        assert (
            main(
                [
                    "fig1", "--scale", "tiny", "--json", str(instrumented),
                    "--metrics-out", str(tmp_path / "m.prom"),
                    "--trace-out", str(tmp_path / "t.json"),
                ]
            )
            == 0
        )
        assert plain.read_bytes() == instrumented.read_bytes()

    def test_figure_stdout_identical(self, capsys):
        from repro.cli import main

        main(["fig1", "--scale", "tiny"])
        plain = capsys.readouterr().out
        with telemetry_session():
            main(["fig1", "--scale", "tiny"])
        instrumented = capsys.readouterr().out
        assert plain == instrumented


class TestColumnarAccountingMetrics:
    """account_columns records the same RF telemetry as account."""

    @pytest.mark.parametrize("arch_name", ["baseline", "gscalar", "alu_scalar"])
    def test_rf_counters_match_event_engine(self, arch_name):
        from repro.config import architecture_by_name
        from repro.power.accounting import PowerAccountant
        from repro.scalar.arch_batch import process_columns
        from repro.scalar.architectures import process_classified
        from repro.scalar.columns import ClassifiedColumns
        from repro.timing.gpu import simulate_architecture

        built = build_workload("BP", "tiny")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        classified = classify_trace(trace, built.kernel.num_registers)
        arch = architecture_by_name(arch_name)
        processed = process_classified(classified, arch, trace.warp_size)
        pcols = process_columns(
            ClassifiedColumns.from_classified(classified, trace.warp_size), arch
        )
        timing = simulate_architecture(processed, arch, warp_size=trace.warp_size)
        accountant = PowerAccountant(arch)

        with telemetry_session() as event_tel:
            accountant.account(processed, timing)
        with telemetry_session() as batch_tel:
            accountant.account_columns(pcols, timing)

        for family in ("rf_accesses", "sidecar_accesses", "regfile_bank_activations"):
            assert batch_tel.counters_named(family) == event_tel.counters_named(
                family
            ), family
