"""Property-based tests: executor semantics vs direct numpy reference."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage, run_kernel

lane_values = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=32, max_size=32
)


def run_binary(opcode_method_name, a_values, b_values):
    """Execute one binary op over 32 lanes through the full stack."""
    b = KernelBuilder("prop")
    tid = b.tid()
    x = b.ld_global(b.imad(tid, 4, 0x1000))
    y = b.ld_global(b.imad(tid, 4, 0x2000))
    method = getattr(b, opcode_method_name)
    z = method(x, y)
    b.st_global(b.imad(tid, 4, 0x3000), z)
    memory = MemoryImage()
    memory.bind_array(0x1000, np.array(a_values, dtype=np.uint32))
    memory.bind_array(0x2000, np.array(b_values, dtype=np.uint32))
    run_kernel(b.finish(), LaunchConfig(1, 32), memory)
    return memory.read_array(0x3000, 32)


@settings(max_examples=25, deadline=None)
@given(a=lane_values, b=lane_values)
def test_iadd_matches_numpy(a, b):
    expected = (np.array(a, dtype=np.uint64) + np.array(b, dtype=np.uint64)) % 2**32
    assert np.array_equal(run_binary("iadd", a, b), expected.astype(np.uint32))


@settings(max_examples=25, deadline=None)
@given(a=lane_values, b=lane_values)
def test_imul_matches_numpy(a, b):
    expected = (np.array(a, dtype=np.uint64) * np.array(b, dtype=np.uint64)) % 2**32
    assert np.array_equal(run_binary("imul", a, b), expected.astype(np.uint32))


@settings(max_examples=25, deadline=None)
@given(a=lane_values, b=lane_values)
def test_xor_and_or_consistent(a, b):
    a_arr = np.array(a, dtype=np.uint32)
    b_arr = np.array(b, dtype=np.uint32)
    assert np.array_equal(run_binary("xor", a, b), a_arr ^ b_arr)
    assert np.array_equal(run_binary("and_", a, b), a_arr & b_arr)
    assert np.array_equal(run_binary("or_", a, b), a_arr | b_arr)


@settings(max_examples=25, deadline=None)
@given(a=lane_values, b=lane_values)
def test_setlt_is_signed(a, b):
    a_signed = np.array(a, dtype=np.uint32).view(np.int32)
    b_signed = np.array(b, dtype=np.uint32).view(np.int32)
    expected = (a_signed < b_signed).astype(np.uint32)
    assert np.array_equal(run_binary("setlt", a, b), expected)


@settings(max_examples=25, deadline=None)
@given(a=lane_values, b=lane_values)
def test_imin_imax_bracket(a, b):
    low = run_binary("imin", a, b).view(np.int32)
    high = run_binary("imax", a, b).view(np.int32)
    assert bool(np.all(low <= high))


@settings(max_examples=20, deadline=None)
@given(
    flags=st.lists(st.booleans(), min_size=32, max_size=32),
)
def test_divergent_merge_preserves_inactive_lanes(flags):
    """A divergent write must leave inactive lanes untouched."""
    b = KernelBuilder("merge")
    tid = b.tid()
    flag = b.ld_global(b.imad(tid, 4, 0x1000))
    value = b.mov(5)
    cond = b.setne(flag, 0)
    with b.if_(cond):
        value = b.mov(77, dst=value)
    b.st_global(b.imad(tid, 4, 0x3000), value)
    memory = MemoryImage()
    memory.bind_array(0x1000, np.array(flags, dtype=np.uint32))
    run_kernel(b.finish(), LaunchConfig(1, 32), memory)
    out = memory.read_array(0x3000, 32)
    expected = np.where(np.array(flags), 77, 5).astype(np.uint32)
    assert np.array_equal(out, expected)
