"""Columnar (struct-of-arrays) forms of the classified/processed trace.

PR 4 stopped the struct-of-arrays pipeline at classification: the batch
classifier still hands every downstream consumer per-event
:class:`~repro.scalar.tracker.ClassifiedEvent` /
:class:`~repro.scalar.architectures.ProcessedEvent` objects.  This
module defines the two containers that carry the columnar spine the
rest of the way:

* :class:`ClassifiedColumns` — everything the per-architecture
  interpretation and timing lowering read from a classified stream,
  as flat numpy arrays (one extraction pass, shared by every
  architecture).  Ragged per-source data uses the same offset-table
  idiom as :class:`~repro.simt.trace.ColumnarTrace`; when the columnar
  trace is available (the cache-hit path) its arrays are reused
  directly instead of being re-extracted.

* :class:`ProcessedColumns` — one architecture's interpretation of the
  stream: per-event ``scalar_executed`` / ``exec_lanes`` /
  ``extra_instructions`` / compressor-decompressor counts plus a flat
  register-file access table (kind id, register, enc, enc_lo/enc_hi,
  mask, sidecar) with per-event offsets.  Access rows appear in
  exactly the order :class:`~repro.scalar.architectures.ArchitectureView`
  emits its :class:`~repro.regfile.access.RegisterAccess` records, so
  :meth:`ProcessedColumns.from_events` (the event-engine bridge) and
  :func:`repro.scalar.arch_batch.process_columns` (the batch engine)
  are comparable with :func:`processed_columns_equal` — the
  differential suite pins them array-for-array.

Both containers carry enough context (opcode ids, active-lane counts,
warp lengths) for the vectorized power accountant and the timing
lowering to run without touching a single per-event object.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.isa.opcodes import OpCategory, Opcode, category_of
from repro.regfile.access import ACCESS_KIND_TO_ID, WRITE_KIND_IDS, AccessKind
from repro.scalar.eligibility import SCALAR_CLASS_TO_ID
from repro.simt.trace import OPCODE_TO_ID, ColumnarTrace

#: Stable integer coding of :class:`~repro.isa.opcodes.OpCategory`,
#: keyed by the value string (same convention as the other id tables).
CATEGORY_TO_CODE = {
    category: index
    for index, category in enumerate(sorted(OpCategory, key=lambda c: c.value))
}
CODE_TO_CATEGORY = {index: cat for cat, index in CATEGORY_TO_CODE.items()}

#: Per-opcode-id lookup tables used by the batch kernels (index with an
#: ``opcode_ids`` array to get the per-event property).
_NUM_OPCODES = len(OPCODE_TO_ID)
CATEGORY_CODE_BY_OPCODE = np.zeros(_NUM_OPCODES, dtype=np.uint8)
for _opcode, _oid in OPCODE_TO_ID.items():
    CATEGORY_CODE_BY_OPCODE[_oid] = CATEGORY_TO_CODE[category_of(_opcode)]
BAR_OPCODE_ID = OPCODE_TO_ID[Opcode.BAR]

CTRL_CODE = CATEGORY_TO_CODE[OpCategory.CTRL]
SFU_CODE = CATEGORY_TO_CODE[OpCategory.SFU]
MEM_CODE = CATEGORY_TO_CODE[OpCategory.MEM]

#: Access-kind ids the batch kernels scatter into the access table.
FULL_READ_ID = ACCESS_KIND_TO_ID[AccessKind.FULL_READ]
FULL_WRITE_ID = ACCESS_KIND_TO_ID[AccessKind.FULL_WRITE]
COMPRESSED_READ_ID = ACCESS_KIND_TO_ID[AccessKind.COMPRESSED_READ]
COMPRESSED_WRITE_ID = ACCESS_KIND_TO_ID[AccessKind.COMPRESSED_WRITE]
SCALAR_READ_ID = ACCESS_KIND_TO_ID[AccessKind.SCALAR_READ]
SCALAR_WRITE_ID = ACCESS_KIND_TO_ID[AccessKind.SCALAR_WRITE]
PARTIAL_WRITE_ID = ACCESS_KIND_TO_ID[AccessKind.PARTIAL_WRITE]
SCALAR_RF_READ_ID = ACCESS_KIND_TO_ID[AccessKind.SCALAR_RF_READ]
SCALAR_RF_WRITE_ID = ACCESS_KIND_TO_ID[AccessKind.SCALAR_RF_WRITE]

READ_KIND_IDS = frozenset(
    set(ACCESS_KIND_TO_ID.values()) - set(WRITE_KIND_IDS)
)

_EMPTY_U32 = np.empty((0, 0), dtype=np.uint32)


@dataclass
class ClassifiedColumns:
    """One classified stream as flat arrays (architecture-independent).

    Events of all warps are concatenated warp-major, exactly like
    :class:`~repro.simt.trace.ColumnarTrace`; ``warp_lengths`` delimits
    the per-warp segments.  The per-source table is ragged: event
    *i*'s sources are rows ``src_offsets[i]:src_offsets[i + 1]``, in
    operand order.  Encoding fields hold the sidecar state *at read
    time* for sources and *after/before the write* for destinations;
    events without a written destination have ``has_dst_enc`` False
    and zeroed destination fields.
    """

    warp_size: int
    warp_lengths: np.ndarray  # (n_warps,) int64

    # Per-event (n,).
    opcode_ids: np.ndarray  # uint16
    category_codes: np.ndarray  # uint8, CATEGORY_TO_CODE
    masks: np.ndarray  # uint64
    active_lanes: np.ndarray  # int32
    divergent: np.ndarray  # bool
    blocks: np.ndarray  # int32
    dst: np.ndarray  # int32, -1 = no destination register
    scalar_class_ids: np.ndarray  # uint8, SCALAR_CLASS_TO_ID
    lo_half_exec: np.ndarray  # bool
    hi_half_exec: np.ndarray  # bool
    has_dst_enc: np.ndarray  # bool (dst_encoding is not None)
    needs_move: np.ndarray  # bool (needs_decompress_move, pre-elision)
    dst_enc: np.ndarray  # int8
    dst_enc_lo: np.ndarray  # int8
    dst_enc_hi: np.ndarray  # int8
    dst_is_scalar: np.ndarray  # bool (dst_encoding.is_scalar)
    before_enc: np.ndarray  # int8 (dst_encoding_before, move events)
    before_enc_lo: np.ndarray  # int8
    before_enc_hi: np.ndarray  # int8

    # Per-source table (ragged).
    src_offsets: np.ndarray  # (n + 1,) int64
    src_registers: np.ndarray  # int32
    src_enc: np.ndarray  # int8
    src_enc_lo: np.ndarray  # int8
    src_enc_hi: np.ndarray  # int8
    src_divergent: np.ndarray  # bool (encoding.divergent)
    src_scalar_for_read: np.ndarray  # bool

    # Per-lane addresses (timing lowering), row-indexed like the trace.
    addr_index: np.ndarray  # (n,) int64, -1 = no addresses
    addresses: np.ndarray  # (n_addr_rows, warp_size) uint32

    @property
    def num_events(self) -> int:
        return int(self.opcode_ids.shape[0])

    def as_arrays(self) -> dict[str, np.ndarray]:
        """All array fields by name (the v5 bank payload)."""
        return {name: getattr(self, name) for name in CLASSIFIED_ARRAY_FIELDS}

    @classmethod
    def from_arrays(
        cls, warp_size: int, arrays: dict[str, np.ndarray]
    ) -> "ClassifiedColumns":
        """Rebuild from :meth:`as_arrays` output (mmap views welcome)."""
        return cls(
            warp_size=warp_size,
            **{name: arrays[name] for name in CLASSIFIED_ARRAY_FIELDS},
        )

    def warp_bounds(self) -> np.ndarray:
        """``(n_warps + 1,)`` event offsets of each warp's segment."""
        bounds = np.zeros(len(self.warp_lengths) + 1, dtype=np.int64)
        np.cumsum(self.warp_lengths, out=bounds[1:])
        return bounds

    @classmethod
    def from_classified(
        cls,
        classified: list[list],
        warp_size: int,
        columnar: ColumnarTrace | None = None,
    ) -> "ClassifiedColumns":
        """Extract the columns from a classified stream (one pass).

        ``columnar``, when given, must be the trace the stream was
        classified from; its event-side arrays (opcodes, masks, blocks,
        destinations, source registers, addresses) are reused directly
        so the extraction loop only walks the classification outputs.
        """
        count = sum(len(warp) for warp in classified)
        class_ids = np.empty(count, dtype=np.uint8)
        lo_half = np.empty(count, dtype=bool)
        hi_half = np.empty(count, dtype=bool)
        divergent = np.empty(count, dtype=bool)
        has_dst = np.empty(count, dtype=bool)
        needs_move = np.empty(count, dtype=bool)
        dst_enc = np.zeros(count, dtype=np.int8)
        dst_enc_lo = np.zeros(count, dtype=np.int8)
        dst_enc_hi = np.zeros(count, dtype=np.int8)
        dst_is_scalar = np.zeros(count, dtype=bool)
        before_enc = np.zeros(count, dtype=np.int8)
        before_enc_lo = np.zeros(count, dtype=np.int8)
        before_enc_hi = np.zeros(count, dtype=np.int8)

        class_to_id = SCALAR_CLASS_TO_ID
        src_enc: list[int] = []
        src_enc_lo: list[int] = []
        src_enc_hi: list[int] = []
        src_div: list[bool] = []
        src_scalar: list[bool] = []
        enc_append = src_enc.append
        lo_append = src_enc_lo.append
        hi_append = src_enc_hi.append
        div_append = src_div.append
        scalar_append = src_scalar.append

        need_events = columnar is None
        if need_events:
            opcode_ids = np.empty(count, dtype=np.uint16)
            masks = np.empty(count, dtype=np.uint64)
            blocks = np.empty(count, dtype=np.int32)
            dst = np.empty(count, dtype=np.int32)
            src_offsets = np.zeros(count + 1, dtype=np.int64)
            src_registers: list[int] = []
            addr_index = np.full(count, -1, dtype=np.int64)
            addr_rows: list[np.ndarray] = []
            opcode_to_id = OPCODE_TO_ID
        position = 0
        for warp_events in classified:
            for item in warp_events:
                class_ids[position] = class_to_id[item.scalar_class]
                lo_half[position] = item.lo_half_scalar_exec
                hi_half[position] = item.hi_half_scalar_exec
                divergent[position] = item.divergent
                needs_move[position] = item.needs_decompress_move
                encoding = item.dst_encoding
                if encoding is None:
                    has_dst[position] = False
                else:
                    has_dst[position] = True
                    dst_enc[position] = encoding.enc
                    dst_enc_lo[position] = encoding.enc_lo
                    dst_enc_hi[position] = encoding.enc_hi
                    dst_is_scalar[position] = encoding.is_scalar
                    if item.needs_decompress_move:
                        before = item.dst_encoding_before
                        before_enc[position] = before.enc
                        before_enc_lo[position] = before.enc_lo
                        before_enc_hi[position] = before.enc_hi
                for source in item.sources:
                    encoding = source.encoding
                    enc_append(encoding.enc)
                    lo_append(encoding.enc_lo)
                    hi_append(encoding.enc_hi)
                    div_append(encoding.divergent)
                    scalar_append(source.scalar_for_read)
                if need_events:
                    event = item.event
                    opcode_ids[position] = opcode_to_id[event.opcode]
                    masks[position] = event.active_mask
                    blocks[position] = event.block_id
                    dst[position] = -1 if event.dst is None else event.dst
                    src_registers.extend(event.src_regs)
                    src_offsets[position + 1] = len(src_registers)
                    if event.addresses is not None:
                        addr_index[position] = len(addr_rows)
                        addr_rows.append(
                            np.asarray(event.addresses, dtype=np.uint32)
                        )
                position += 1

        if columnar is not None:
            opcode_ids = columnar.opcode_ids
            masks = columnar.masks
            blocks = columnar.blocks
            dst = columnar.dst
            src_offsets = columnar.src_offsets
            registers = columnar.src_flat
            addr_index = columnar.addr_index
            addresses = columnar.addresses
        else:
            registers = np.array(src_registers, dtype=np.int32)
            addresses = (
                np.stack(addr_rows)
                if addr_rows
                else np.empty((0, warp_size), dtype=np.uint32)
            )

        active_lanes = _popcount(masks)
        return cls(
            warp_size=warp_size,
            warp_lengths=np.array(
                [len(warp) for warp in classified], dtype=np.int64
            ),
            opcode_ids=opcode_ids,
            category_codes=CATEGORY_CODE_BY_OPCODE[opcode_ids],
            masks=masks,
            active_lanes=active_lanes,
            divergent=divergent,
            blocks=blocks,
            dst=dst,
            scalar_class_ids=class_ids,
            lo_half_exec=lo_half,
            hi_half_exec=hi_half,
            has_dst_enc=has_dst,
            needs_move=needs_move,
            dst_enc=dst_enc,
            dst_enc_lo=dst_enc_lo,
            dst_enc_hi=dst_enc_hi,
            dst_is_scalar=dst_is_scalar,
            before_enc=before_enc,
            before_enc_lo=before_enc_lo,
            before_enc_hi=before_enc_hi,
            src_offsets=src_offsets,
            src_registers=registers,
            src_enc=np.array(src_enc, dtype=np.int8),
            src_enc_lo=np.array(src_enc_lo, dtype=np.int8),
            src_enc_hi=np.array(src_enc_hi, dtype=np.int8),
            src_divergent=np.array(src_div, dtype=bool),
            src_scalar_for_read=np.array(src_scalar, dtype=bool),
            addr_index=addr_index,
            addresses=addresses,
        )


#: Array fields of :class:`ClassifiedColumns` in declaration order —
#: the schema of its v5 cache banks (``warp_size`` is the only scalar
#: field and travels in the manifest metadata instead).
CLASSIFIED_ARRAY_FIELDS = tuple(
    f.name for f in fields(ClassifiedColumns) if f.name != "warp_size"
)


def _popcount(masks: np.ndarray) -> np.ndarray:
    """Vectorized popcount of an integer mask array -> int32 counts."""
    if masks.size == 0:
        return np.zeros(0, dtype=np.int32)
    as_bytes = np.ascontiguousarray(masks.astype(np.uint64)).view(np.uint8)
    bits = np.unpackbits(as_bytes.reshape(masks.size, 8), axis=1)
    return bits.sum(axis=1).astype(np.int32)


@dataclass
class ProcessedColumns:
    """One architecture's processed trace as flat arrays.

    The per-event counters mirror
    :class:`~repro.scalar.architectures.ProcessedEvent` field-for-field;
    the flat access table stores event *i*'s register-file accesses at
    rows ``acc_offsets[i]:acc_offsets[i + 1]``, in emission order, with
    :data:`repro.regfile.access.ACCESS_KIND_TO_ID` kind codes.
    ``opcode_ids`` / ``category_codes`` / ``active_lanes`` are carried
    through (shared references with the classified columns) so the
    power accountant needs no second container.
    """

    warp_size: int
    warp_lengths: np.ndarray  # (n_warps,) int64

    # Per-event (n,).
    opcode_ids: np.ndarray  # uint16
    category_codes: np.ndarray  # uint8
    active_lanes: np.ndarray  # int32
    scalar_executed: np.ndarray  # bool
    lo_half_scalar: np.ndarray  # bool
    hi_half_scalar: np.ndarray  # bool
    exec_lanes: np.ndarray  # int32
    extra_instructions: np.ndarray  # int32
    compressor_ops: np.ndarray  # int32
    decompressor_ops: np.ndarray  # int32

    # Flat access table.
    acc_offsets: np.ndarray  # (n + 1,) int64
    acc_kind_ids: np.ndarray  # uint8
    acc_registers: np.ndarray  # int32
    acc_enc: np.ndarray  # int8
    acc_enc_lo: np.ndarray  # int8
    acc_enc_hi: np.ndarray  # int8
    acc_half: np.ndarray  # bool (half_compressed)
    acc_masks: np.ndarray  # uint64 (partial writes; 0 elsewhere)
    acc_sidecar: np.ndarray  # bool

    @property
    def num_events(self) -> int:
        return int(self.scalar_executed.shape[0])

    @property
    def num_accesses(self) -> int:
        return int(self.acc_kind_ids.shape[0])

    def as_arrays(self) -> dict[str, np.ndarray]:
        """All array fields by name (the v5 bank payload)."""
        return {name: getattr(self, name) for name in PROCESSED_ARRAY_FIELDS}

    @classmethod
    def from_arrays(
        cls, warp_size: int, arrays: dict[str, np.ndarray]
    ) -> "ProcessedColumns":
        """Rebuild from :meth:`as_arrays` output (mmap views welcome)."""
        return cls(
            warp_size=warp_size,
            **{name: arrays[name] for name in PROCESSED_ARRAY_FIELDS},
        )

    @classmethod
    def from_events(
        cls, processed: list[list], warp_size: int
    ) -> "ProcessedColumns":
        """Columnarize an event-engine result (the differential bridge).

        Walks :class:`~repro.scalar.architectures.ProcessedEvent`
        streams and packs them into the same layout the batch engine
        produces, so the two engines can be compared exactly with
        :func:`processed_columns_equal`.
        """
        count = sum(len(warp) for warp in processed)
        opcode_ids = np.empty(count, dtype=np.uint16)
        active_lanes = np.empty(count, dtype=np.int32)
        scalar_executed = np.empty(count, dtype=bool)
        lo_half = np.empty(count, dtype=bool)
        hi_half = np.empty(count, dtype=bool)
        exec_lanes = np.empty(count, dtype=np.int32)
        extra = np.empty(count, dtype=np.int32)
        compressor = np.empty(count, dtype=np.int32)
        decompressor = np.empty(count, dtype=np.int32)
        acc_offsets = np.zeros(count + 1, dtype=np.int64)

        kind_ids: list[int] = []
        registers: list[int] = []
        enc: list[int] = []
        enc_lo: list[int] = []
        enc_hi: list[int] = []
        half: list[bool] = []
        acc_masks: list[int] = []
        sidecar: list[bool] = []
        kind_to_id = ACCESS_KIND_TO_ID
        opcode_to_id = OPCODE_TO_ID

        position = 0
        for warp_events in processed:
            for item in warp_events:
                event = item.classified.event
                opcode_ids[position] = opcode_to_id[event.opcode]
                active_lanes[position] = event.active_lane_count()
                scalar_executed[position] = item.scalar_executed
                lo_half[position] = item.lo_half_scalar
                hi_half[position] = item.hi_half_scalar
                exec_lanes[position] = item.exec_lanes
                extra[position] = item.extra_instructions
                compressor[position] = item.compressor_ops
                decompressor[position] = item.decompressor_ops
                for access in item.rf_accesses:
                    kind_ids.append(kind_to_id[access.kind])
                    registers.append(access.register)
                    enc.append(access.enc)
                    enc_lo.append(access.enc_lo)
                    enc_hi.append(access.enc_hi)
                    half.append(access.half_compressed)
                    acc_masks.append(access.active_mask)
                    sidecar.append(access.sidecar)
                acc_offsets[position + 1] = len(kind_ids)
                position += 1

        return cls(
            warp_size=warp_size,
            warp_lengths=np.array(
                [len(warp) for warp in processed], dtype=np.int64
            ),
            opcode_ids=opcode_ids,
            category_codes=CATEGORY_CODE_BY_OPCODE[opcode_ids],
            active_lanes=active_lanes,
            scalar_executed=scalar_executed,
            lo_half_scalar=lo_half,
            hi_half_scalar=hi_half,
            exec_lanes=exec_lanes,
            extra_instructions=extra,
            compressor_ops=compressor,
            decompressor_ops=decompressor,
            acc_offsets=acc_offsets,
            acc_kind_ids=np.array(kind_ids, dtype=np.uint8),
            acc_registers=np.array(registers, dtype=np.int32),
            acc_enc=np.array(enc, dtype=np.int8),
            acc_enc_lo=np.array(enc_lo, dtype=np.int8),
            acc_enc_hi=np.array(enc_hi, dtype=np.int8),
            acc_half=np.array(half, dtype=bool),
            acc_masks=np.array(acc_masks, dtype=np.uint64),
            acc_sidecar=np.array(sidecar, dtype=bool),
        )


#: Array fields of :class:`ProcessedColumns` in declaration order — the
#: schema of its v5 cache banks.
PROCESSED_ARRAY_FIELDS = tuple(
    f.name for f in fields(ProcessedColumns) if f.name != "warp_size"
)


def _merge_warp_lengths(
    fragments: list[np.ndarray], continued: list[bool]
) -> np.ndarray:
    """Fold per-chunk warp-length tables back into whole-trace warps.

    ``continued[i]`` says fragment *i*'s first warp is the tail of
    fragment *i - 1*'s last warp (a chunk boundary cut it), so their
    lengths sum into one warp.
    """
    merged: list[int] = []
    for lengths, cont in zip(fragments, continued):
        items = lengths.tolist()
        if cont and merged and items:
            merged[-1] += items[0]
            items = items[1:]
        merged.extend(items)
    return np.array(merged, dtype=np.int64)


def _concat_offsets(tables: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-chunk offset tables into one running table."""
    parts = [np.zeros(1, dtype=np.int64)]
    base = 0
    for table in tables:
        parts.append(table[1:].astype(np.int64) + base)
        base += int(table[-1])
    return np.concatenate(parts)


def _concat_row_indexes(
    indexes: list[np.ndarray], row_counts: list[int]
) -> np.ndarray:
    """Concatenate per-chunk row-index columns, rebasing to the
    concatenated row matrix (``-1`` stays ``-1``)."""
    parts = []
    base = 0
    for index, rows in zip(indexes, row_counts):
        parts.append(np.where(index >= 0, index + base, -1).astype(np.int64))
        base += rows
    return (
        np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
    )


def concat_classified_columns(
    fragments: list[ClassifiedColumns], continued: list[bool]
) -> ClassifiedColumns:
    """Reassemble whole-trace classified columns from chunk fragments.

    ``fragments`` are per-chunk outputs in stream order; ``continued``
    flags each fragment whose first warp continues the previous
    fragment's last warp.  Per-event and flat per-source arrays simply
    concatenate; offset/row-index tables are rebased.  The differential
    suite uses this to compare a chunked run against the whole-trace
    engines array-for-array.
    """
    if not fragments:
        raise ValueError("concat_classified_columns needs >= 1 fragment")
    per_event = (
        "opcode_ids", "category_codes", "masks", "active_lanes",
        "divergent", "blocks", "dst", "scalar_class_ids", "lo_half_exec",
        "hi_half_exec", "has_dst_enc", "needs_move", "dst_enc",
        "dst_enc_lo", "dst_enc_hi", "dst_is_scalar", "before_enc",
        "before_enc_lo", "before_enc_hi",
    )
    per_source = (
        "src_registers", "src_enc", "src_enc_lo", "src_enc_hi",
        "src_divergent", "src_scalar_for_read",
    )
    merged = {
        name: np.concatenate([getattr(f, name) for f in fragments])
        for name in per_event + per_source
    }
    warp_size = fragments[0].warp_size
    address_rows = [
        f.addresses for f in fragments if f.addresses.shape[0]
    ]
    return ClassifiedColumns(
        warp_size=warp_size,
        warp_lengths=_merge_warp_lengths(
            [f.warp_lengths for f in fragments], continued
        ),
        src_offsets=_concat_offsets([f.src_offsets for f in fragments]),
        addr_index=_concat_row_indexes(
            [f.addr_index for f in fragments],
            [int(f.addresses.shape[0]) for f in fragments],
        ),
        addresses=(
            np.concatenate(address_rows)
            if address_rows
            else np.empty((0, warp_size), dtype=np.uint32)
        ),
        **merged,
    )


def concat_processed_columns(
    fragments: list[ProcessedColumns], continued: list[bool]
) -> ProcessedColumns:
    """Reassemble whole-trace processed columns from chunk fragments
    (same contract as :func:`concat_classified_columns`)."""
    if not fragments:
        raise ValueError("concat_processed_columns needs >= 1 fragment")
    per_event = (
        "opcode_ids", "category_codes", "active_lanes", "scalar_executed",
        "lo_half_scalar", "hi_half_scalar", "exec_lanes",
        "extra_instructions", "compressor_ops", "decompressor_ops",
    )
    per_access = (
        "acc_kind_ids", "acc_registers", "acc_enc", "acc_enc_lo",
        "acc_enc_hi", "acc_half", "acc_masks", "acc_sidecar",
    )
    merged = {
        name: np.concatenate([getattr(f, name) for f in fragments])
        for name in per_event + per_access
    }
    return ProcessedColumns(
        warp_size=fragments[0].warp_size,
        warp_lengths=_merge_warp_lengths(
            [f.warp_lengths for f in fragments], continued
        ),
        acc_offsets=_concat_offsets([f.acc_offsets for f in fragments]),
        **merged,
    )


def processed_columns_equal(a: ProcessedColumns, b: ProcessedColumns) -> bool:
    """Exact array-for-array equality of two processed-column sets."""
    return not processed_columns_diff(a, b)


def processed_columns_diff(a: ProcessedColumns, b: ProcessedColumns) -> list[str]:
    """Names of the fields on which two processed-column sets differ."""
    differing: list[str] = []
    if a.warp_size != b.warp_size:
        differing.append("warp_size")
    for name in (
        "warp_lengths",
        "opcode_ids",
        "category_codes",
        "active_lanes",
        "scalar_executed",
        "lo_half_scalar",
        "hi_half_scalar",
        "exec_lanes",
        "extra_instructions",
        "compressor_ops",
        "decompressor_ops",
        "acc_offsets",
        "acc_kind_ids",
        "acc_registers",
        "acc_enc",
        "acc_enc_lo",
        "acc_enc_hi",
        "acc_half",
        "acc_masks",
        "acc_sidecar",
    ):
        left = getattr(a, name)
        right = getattr(b, name)
        if left.shape != right.shape or not np.array_equal(left, right):
            differing.append(name)
    return differing
