"""``srad_1`` (SR1) proxy.

Signature reproduced: the first SRAD kernel — per-thread gradient
computation over narrow-range image floats, the diffusion-coefficient
exponential evaluated on the *shared* q0 statistic (SFU-scalar), and a
boundary-clamp branch that diverges a large fraction of warps with a
scalar-lambda chain inside (divergent scalar).
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    OUTPUT_A,
    OUTPUT_B,
    PARAMS_BASE,
    load_broadcast,
    load_thread_flag,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 707


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the SR1 proxy at the given scale."""
    b = KernelBuilder("srad_1")
    tid = b.tid()
    q0 = load_broadcast(b, PARAMS_BASE)  # shared image statistic
    lam = load_broadcast(b, PARAMS_BASE + 4)  # scalar lambda
    flag = load_thread_flag(b, tid)
    at_border = b.setne(flag, 0)
    image = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    north = b.ld_global(b.iadd(thread_element_addr(b, tid, INPUT_A), 4))
    south = b.ld_global(b.iadd(thread_element_addr(b, tid, INPUT_A), 8))
    coefficient_sum = b.mov(b.fimm(0.0))

    with b.for_range(0, scale.inner_iterations) as _sweep:
        # Shared diffusion coefficient: exp(-q0 * step) — SFU scalar.
        q_scaled = b.fmul(q0, b.fimm(-1.4427))  # ALU scalar (1/ln2 fold)
        coefficient = b.ex2(q_scaled)  # SFU scalar
        damping = b.fmul(coefficient, lam)  # ALU scalar
        # Vector gradient work on similar floats.
        gradient_n = b.fsub(north, image)
        gradient_s = b.fsub(south, image)
        divergence_term = b.fadd(gradient_n, gradient_s)
        update = b.fmul(divergence_term, damping)
        with b.if_(at_border) as branch:
            # Border clamp over scalar constants: divergent scalar.
            clamp = b.fmul(lam, b.fimm(0.25))
            floor = b.fmax(clamp, coefficient)
            coefficient_sum = b.fadd(coefficient_sum, floor, dst=coefficient_sum)
            with branch.else_():
                image = b.fadd(image, update, dst=image)
        q0 = b.fmul(q0, b.fimm(0.97), dst=q0)  # statistic decays (scalar)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), image)
    b.st_global(thread_element_addr(b, tid, OUTPUT_B), coefficient_sum)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    memory.bind_array(
        INPUT_A, datagen.narrow_floats(total_threads + 2, 0.5, 0.02, _SEED)
    )
    memory.bind_array(PARAMS_BASE, np.array([0.35, 0.125], dtype=np.float32))
    memory.bind_array(
        FLAGS_BASE,
        datagen.boundary_mask_pattern(total_threads, 0.78, _SEED + 1),
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="SRAD gradient kernel with scalar exponential coefficient",
    )
