"""End-to-end experiment pipeline with caching.

One :class:`ExperimentRunner` owns a scale and a GPU/energy
configuration and lazily computes, per benchmark:

* the functional trace (executed once, shared by every architecture),
* the classified event stream (tracker output, architecture-independent),
* per-architecture processed events, timing results and power reports.

Every figure regenerator takes a runner, so a full ``python -m repro all``
executes each benchmark exactly once.

With ``cache_dir`` set, every expensive stage also persists on disk so
it can be shared *across* processes:

* traces, classified columns and processed columns in the zero-copy v5
  manifest/bank layout (:mod:`repro.experiments.store`) — a warm hit
  memory-maps page-aligned ``.npy`` banks read-only instead of
  deserializing them;
* classified event streams and per-architecture timing/power results
  as small pickle sidecars.

Legacy v3 ``.npz`` traces are still read and upgraded to v5 in place;
``transport="legacy"`` pins the old npz path (migration tests, the
transport benchmark's reference arm).  Each cached artifact embeds a
content fingerprint
(:mod:`repro.experiments.cachekey`) covering the kernel, scale, warp
size, architecture, GPU configuration and energy parameters; a
mismatch — or any corrupt file — falls back to re-execution and
overwrites the stale entry, and staleness is decided from the v5
manifest (or a peek at a pickle sidecar's first bytes) without
materializing payloads.  :meth:`ExperimentRunner.prefetch` fans the
benchmark × architecture matrix out over a process pool
(:mod:`repro.experiments.parallel`) that communicates through this
cache plus shared-memory exports of already-materialized traces
(:mod:`repro.experiments.shm`), and :attr:`ExperimentRunner.stats`
counts cache hits, misses, re-executions, per-stage wall time and the
transport byte counters (``bytes_mapped`` / ``bytes_copied`` /
``bytes_deserialized``) for observability.
"""

from __future__ import annotations

import os
import pickle
import re
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.analysis.static_.widths import WIDTH_ANALYSIS_VERSION, analyze_widths
from repro.config import ArchitectureConfig, GpuConfig
from repro.errors import TraceError
from repro.experiments import cachekey, store
from repro.obs.instrument import record_columnar_warps
from repro.obs.memory import record_bytes_in_flight, record_peak_rss
from repro.obs.telemetry import Telemetry, get_telemetry
from repro.experiments.streaming import _array_bytes
from repro.power.accounting import PowerAccountant, _PowerAggregates
from repro.power.energy import DEFAULT_ENERGY, EnergyParams
from repro.power.report import PowerReport
from repro.scalar.arch_batch import (
    ARCH_ENGINE_CHOICES,
    DEFAULT_ARCH_ENGINE,
    ArchCarry,
    process_columns,
    process_columns_chunk,
)
from repro.scalar.architectures import ProcessedEvent, process_classified
from repro.scalar.batch import (
    CLASSIFIER_CHOICES,
    DEFAULT_CLASSIFIER,
    ClassifierCarry,
    classify_columnar_batch,
    classify_columnar_chunk,
    classify_trace_with,
)
from repro.scalar.columns import ClassifiedColumns, ProcessedColumns
from repro.scalar.tracker import ClassifiedEvent
from repro.simt.executor import run_kernel
from repro.simt.serialize import (
    load_columnar,
    load_columnar_v5,
    save_columnar_v5,
    save_trace,
)
from repro.simt.trace import (
    ColumnarTrace,
    KernelTrace,
    iter_chunks,
    opcode_labels,
)
from repro.timing.gpu import (
    simulate_architecture,
    simulate_architecture_columns,
    simulate_warp_ops,
)
from repro.timing.ops import build_timing_ops_columns
from repro.timing.sm import TimingResult
from repro.timing.sm_event import DEFAULT_SM_ENGINE, SM_ENGINE_CHOICES
from repro.workloads.registry import SCALES, BuiltWorkload, all_workloads, workload_by_name
from repro.workloads.synth import (
    iter_synthetic_chunks,
    materialize_synthetic,
    synthetic_replicas,
)

#: Version of the pickled stage sidecars (classified streams and
#: timing/power results).  Bump to invalidate all of them at once,
#: e.g. when a classifier or timing-model change alters their meaning.
#: Version 2: the batch classification engine became the default and
#: the classified-stream fingerprint gained the engine name.
#: Version 4: the columnar architecture/power engine became the default
#: and the results fingerprint gained the arch-engine name (so the
#: batch and event engines never replay each other's sidecars).
#: Version 5: the event-driven SM timing engine became the default, the
#: results fingerprint gained the SM-engine name, and the memory model's
#: store path stopped allocating L1 lines (no-allocate stores change
#: load hit rates, hence latencies, hence every cached timing result).
#: Version 6: the two-bucket stall breakdown became the six-cause
#: per-scheduler taxonomy (:class:`~repro.timing.sm.StallBreakdown` was
#: reshaped and :class:`~repro.timing.sm.TimingResult` gained
#: ``stalls_per_scheduler``), changing the pickled timing-result shape.
STAGE_VERSION = 6

#: Cache transports.  ``mmap`` (default) reads and writes the v5
#: manifest + page-aligned bank layout (:mod:`repro.experiments.store`)
#: and opens banks as read-only memory maps — with transparent dual
#: read of legacy v3 ``.npz`` traces, which are upgraded to v5 on their
#: first hit.  ``legacy`` pins the pre-v5 compressed-npz/pickle forms,
#: kept for migration tests and as the reference arm of
#: ``bench --transport``.
TRANSPORT_CHOICES = ("mmap", "legacy")
DEFAULT_TRANSPORT = "mmap"

#: Chunk size used when a synthetic (``synthetic_events > 0``) scale is
#: streamed without an explicit ``--chunk-events``.
DEFAULT_STREAM_CHUNK = 65536

#: Pickle-protocol-aware fingerprint peek for legacy sidecars: the
#: payload dicts are written fingerprint-first, so the SHORT_BINUNICODE
#: key/value pair (``\x8c <len> bytes``, optionally memoized) sits in
#: the first few dozen bytes of the file.  Matching it there lets the
#: staleness check skip unpickling megabytes of stale payload.
_PICKLE_FP_RE = re.compile(
    rb"\x8c\x0bfingerprint\x94?\x8c"
    + bytes([cachekey.DIGEST_CHARS])
    + rb"([0-9a-f]{%d})" % cachekey.DIGEST_CHARS
)
_PICKLE_PEEK_BYTES = 512


class _ChunkBankMiss(Exception):
    """A per-chunk v5 bank verified present vanished before its load.

    Raised inside a warm streamed pass; carry state cannot restart
    mid-stream, so the handler recomputes the whole pass cold.
    """


def _columnar_nbytes(columnar: ColumnarTrace) -> int:
    """Total payload bytes of a columnar trace's arrays."""
    from repro.simt.serialize import _ARRAY_FIELDS

    return int(sum(getattr(columnar, name).nbytes for name in _ARRAY_FIELDS))


def paper_architectures() -> tuple[ArchitectureConfig, ...]:
    """The four evaluated architectures, in Figure 11 order."""
    return (
        ArchitectureConfig.baseline(),
        ArchitectureConfig.alu_scalar(),
        ArchitectureConfig.gscalar_no_divergent(),
        ArchitectureConfig.gscalar(),
    )


def matrix_architectures() -> tuple[ArchitectureConfig, ...]:
    """Every modeled architecture: the paper's four plus the
    statically-compressed RF design point (kept out of
    :func:`paper_architectures` so the figure series stay faithful)."""
    return paper_architectures() + (ArchitectureConfig.static_compress(),)


class RunnerStats:
    """Cache and stage observability counters for one runner.

    ``counters`` tracks cache outcomes (``trace_cache_hits``,
    ``trace_cache_misses``, ``trace_cache_invalid``,
    ``trace_executions``, ``classified_cache_hits``, ...);
    ``stage_seconds`` accumulates wall time per pipeline stage.  Stats
    merge across processes, so a parallel prefetch reports the totals
    over all workers.

    The storage is a :class:`~repro.obs.telemetry.Telemetry` registry
    (``runner_events`` / ``runner_stage_seconds`` counter families plus
    one ``cat="stage"`` span per :meth:`timer` scope, carrying the
    recording process's pid).  When the process-global telemetry is
    enabled — ``repro profile`` or ``--trace-out``/``--metrics-out`` —
    the runner binds its stats to that shared registry, so stage spans
    land on the same timeline as the pipeline's own spans and the
    Chrome trace shows the true per-worker concurrency; otherwise each
    stats object owns a private registry, exactly as independent as the
    old plain-dict implementation.
    """

    _EVENTS = "runner_events"
    _STAGES = "runner_stage_seconds"

    def __init__(self, telemetry: Telemetry | None = None):
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    @property
    def counters(self) -> dict[str, int]:
        """Cache-outcome counters as a plain name -> count dict."""
        return {
            dict(labels)["event"]: value
            for labels, value in sorted(
                self.telemetry.counters_named(self._EVENTS).items()
            )
        }

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Accumulated wall seconds per pipeline stage."""
        return {
            dict(labels)["stage"]: value
            for labels, value in sorted(
                self.telemetry.counters_named(self._STAGES).items()
            )
        }

    def bump(self, name: str, amount: int = 1) -> None:
        self.telemetry.count(self._EVENTS, amount, event=name)

    def add_time(self, stage: str, seconds: float) -> None:
        self.telemetry.count(self._STAGES, seconds, stage=stage)

    @contextmanager
    def timer(self, stage: str, **span_args) -> Iterator[None]:
        """Time a stage: accumulates seconds and records one span."""
        started = time.perf_counter()
        try:
            with self.telemetry.span(stage, cat="stage", **span_args):
                yield
        finally:
            self.add_time(stage, time.perf_counter() - started)

    def merge(self, other: "RunnerStats | dict") -> None:
        """Fold another stats object (or a worker payload) into this one.

        Accepts another :class:`RunnerStats`, a full :meth:`to_payload`
        dict (merged registry-to-registry, spans included), or the
        legacy ``{"counters", "stage_seconds"}`` shape of
        :meth:`to_dict`.
        """
        if isinstance(other, RunnerStats):
            self.telemetry.merge(other.telemetry)
            return
        snapshot = other.get("telemetry")
        if snapshot is not None:
            # Full payload: counters/stage_seconds are already inside
            # the registry snapshot; folding both would double-count.
            self.telemetry.merge(snapshot)
            return
        for name, amount in other.get("counters", {}).items():
            self.bump(name, amount)
        for stage, value in other.get("stage_seconds", {}).items():
            self.add_time(stage, value)

    @property
    def trace_executions(self) -> int:
        """Functional executions actually performed (cache misses paid)."""
        return self.counters.get("trace_executions", 0)

    @property
    def gauges(self) -> dict[str, float]:
        """High-water-mark gauges (peak RSS, bytes in flight, ...)."""
        rendered = {}
        for (name, labels), value in sorted(self.telemetry.gauges.items()):
            if labels:
                inner = ",".join(f"{k}={v}" for k, v in labels)
                name = f"{name}{{{inner}}}"
            rendered[name] = value
        return rendered

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (``--stats-json`` output shape).

        Stamps the process's peak RSS into the gauges first, so every
        stats snapshot reports it even for whole-trace runs that never
        touched the streaming gauges.
        """
        record_peak_rss(self.telemetry)
        return {
            "counters": dict(sorted(self.counters.items())),
            "stage_seconds": {
                stage: round(value, 6)
                for stage, value in sorted(self.stage_seconds.items())
            },
            "gauges": self.gauges,
        }

    def to_payload(self) -> dict:
        """Worker-return payload: :meth:`to_dict` plus the registry.

        The ``telemetry`` snapshot carries every counter, histogram and
        span the worker recorded (stage spans keep the worker's pid),
        so a parent merging payloads reassembles the full multi-process
        timeline; the legacy keys stay for direct consumers.
        """
        payload = self.to_dict()
        payload["telemetry"] = self.telemetry.snapshot()
        return payload


class BenchmarkRun:
    """Cached functional-level artifacts of one benchmark.

    ``trace`` (the per-event form) and ``classified`` (the classified
    event stream) are **lazy**: a cache hit hands back columnar arrays
    — memory-mapped under the v5 transport — and neither the event
    objects nor the classified pickle are materialized until something
    actually reads them.  A fully warm run that replays its results
    sidecars therefore never unpickles a single event.
    """

    def __init__(
        self,
        abbr: str,
        built: BuiltWorkload,
        trace_fingerprint: str = "",
        trace: KernelTrace | None = None,
        columnar: ColumnarTrace | None = None,
        classified: list[list[ClassifiedEvent]] | None = None,
        classified_loader: "Callable[[BenchmarkRun], list[list[ClassifiedEvent]]] | None" = None,
        columnar_loader: "Callable[[BenchmarkRun], ColumnarTrace] | None" = None,
        warp_size: int | None = None,
    ):
        if trace is None and columnar is None and columnar_loader is None:
            raise ValueError("BenchmarkRun needs a trace or a columnar trace")
        self.abbr = abbr
        self.built = built
        #: Content fingerprint of the (kernel, scale, warp-size)
        #: combination that produced the trace; stage sidecars derive
        #: their keys from it.
        self.trace_fingerprint = trace_fingerprint
        self._columnar = columnar
        self._trace = trace
        self._classified = classified
        self._classified_loader = classified_loader
        #: Deferred materializer for the columnar form — the synthetic
        #: large tier installs one so a streamed run (which consumes the
        #: replica generator, never the whole trace) can carry a
        #: BenchmarkRun without paying the materialization.
        self._columnar_loader = columnar_loader
        self._warp_size = warp_size

    def __repr__(self) -> str:
        return (
            f"BenchmarkRun(abbr={self.abbr!r}, "
            f"trace_fingerprint={self.trace_fingerprint!r})"
        )

    @property
    def warp_size(self) -> int:
        """Warp size without forcing any materialization."""
        if self._warp_size is not None:
            return self._warp_size
        if self._trace is not None:
            return self._trace.warp_size
        return self.columnar.warp_size

    @property
    def columnar(self) -> ColumnarTrace | None:
        """The columnar form when the trace came from the cache (or a
        shared-memory adoption, or a deferred synthetic materializer);
        the columnar pipeline reuses these arrays instead of
        re-extracting them from event objects."""
        if self._columnar is None and self._columnar_loader is not None:
            loader = self._columnar_loader
            self._columnar_loader = None
            self._columnar = loader(self)
        return self._columnar

    @property
    def trace(self) -> KernelTrace:
        """The event-form trace (materialized from columnar on demand)."""
        if self._trace is None:
            self._trace = self.columnar.to_trace()
        return self._trace

    @property
    def classified(self) -> list[list[ClassifiedEvent]]:
        """The classified stream (loaded or computed on first access)."""
        if self._classified is None:
            loader = self._classified_loader
            if loader is None:
                raise ValueError(f"{self.abbr}: no classified stream available")
            self._classified = loader(self)
            self._classified_loader = None
        return self._classified


class ExperimentRunner:
    """Caches traces and per-architecture results across experiments."""

    def __init__(
        self,
        scale: str = "default",
        config: GpuConfig | None = None,
        params: EnergyParams | None = None,
        verbose: bool = False,
        cache_dir: str | Path | None = None,
        classifier: str = DEFAULT_CLASSIFIER,
        arch_engine: str = DEFAULT_ARCH_ENGINE,
        sm_engine: str = DEFAULT_SM_ENGINE,
        transport: str = DEFAULT_TRANSPORT,
        chunk_events: int | None = None,
    ):
        if scale not in SCALES:
            raise ValueError(f"unknown scale {scale!r}; known: {', '.join(SCALES)}")
        if chunk_events is not None:
            if chunk_events < 1:
                raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
            if classifier != "batch" or arch_engine != "batch":
                raise ValueError(
                    "chunked streaming requires the batch classifier and "
                    "batch arch engine (the per-event engines have no "
                    "chunk carry-state)"
                )
        if transport not in TRANSPORT_CHOICES:
            raise ValueError(
                f"unknown transport {transport!r}; known: "
                f"{', '.join(TRANSPORT_CHOICES)}"
            )
        if classifier not in CLASSIFIER_CHOICES:
            raise ValueError(
                f"unknown classifier {classifier!r}; known: "
                f"{', '.join(CLASSIFIER_CHOICES)}"
            )
        if arch_engine not in ARCH_ENGINE_CHOICES:
            raise ValueError(
                f"unknown arch engine {arch_engine!r}; known: "
                f"{', '.join(ARCH_ENGINE_CHOICES)}"
            )
        if sm_engine not in SM_ENGINE_CHOICES:
            raise ValueError(
                f"unknown SM engine {sm_engine!r}; known: "
                f"{', '.join(SM_ENGINE_CHOICES)}"
            )
        self.classifier = classifier
        self.arch_engine = arch_engine
        self.sm_engine = sm_engine
        self.transport = transport
        self.chunk_events = chunk_events
        self.scale = SCALES[scale]
        self.config = config or GpuConfig()
        self.params = params or DEFAULT_ENERGY
        self.verbose = verbose
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        # With profiling on, stage spans and cache counters go straight
        # into the shared registry (one timeline with the pipeline's
        # own spans); otherwise the stats own a private registry.
        telemetry = get_telemetry()
        self.stats = RunnerStats(telemetry=telemetry if telemetry.enabled else None)
        if self.cache_dir is not None:
            # Reclaim crashed-writer debris and superseded v5 banks on
            # open (age-gated, so live writers are never swept).
            swept = store.sweep_orphans(self.cache_dir)
            if swept.tmp_files:
                self.stats.bump("cache_tmp_swept", swept.tmp_files)
            if swept.orphan_bank_dirs:
                self.stats.bump("cache_banks_swept", swept.orphan_bank_dirs)
            if swept.bytes_freed:
                self.stats.bump("cache_bytes_swept", swept.bytes_freed)
        self._runs: dict[str, BenchmarkRun] = {}
        self._seeds: dict[str, tuple[ColumnarTrace, int]] = {}
        self._adopted: dict[str, tuple[ColumnarTrace, str, int]] = {}
        #: v5 bank stems this runner has verified (stored or cleanly
        #: loaded) mapped to their fingerprints.  Prefetch ships the
        #: relevant slice to pool workers (:meth:`adopt_bank_hints`), so
        #: workers trust the parent's verification instead of re-probing
        #: every manifest.
        self._bank_hints: dict[str, str] = {}
        self._warp_traces: dict[tuple[str, int], KernelTrace] = {}
        self._static_widths: dict[str, tuple[int, ...]] = {}
        self._processed: dict[tuple[str, str], list[list[ProcessedEvent]]] = {}
        self._classified_columns: dict[str, ClassifiedColumns] = {}
        self._processed_columns: dict[tuple[str, str], ProcessedColumns] = {}
        self._timing: dict[tuple[str, str], TimingResult] = {}
        self._power: dict[tuple[str, str], PowerReport] = {}

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[runner] {message}", flush=True)

    @staticmethod
    def _normalize(abbr: str) -> str:
        """One canonical spelling for benchmark keys, lookups and files."""
        return abbr.strip().upper()

    # ------------------------------------------------------------------
    # On-disk cache plumbing.
    # ------------------------------------------------------------------
    def _trace_stem(self, key: str, warp_size: int) -> str:
        suffix = "" if warp_size == 32 else f"_w{warp_size}"
        return f"{key}_{self.scale.name}{suffix}"

    def _trace_path(self, key: str, warp_size: int) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{self._trace_stem(key, warp_size)}.npz"

    def _stage_stem(self, key: str, stage: str) -> str:
        return f"{key}_{self.scale.name}_{stage}"

    def _sidecar_path(self, key: str, stage: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{self._stage_stem(key, stage)}.pkl"

    @staticmethod
    def _replace_into(tmp: Path, final: Path) -> None:
        os.replace(tmp, final)

    @staticmethod
    def _peek_sidecar_fingerprint(path: Path) -> str | None:
        """Extract a legacy sidecar's fingerprint from its first bytes.

        ``None`` when the pattern isn't found (unreadable file, foreign
        pickle protocol, reordered payload) — the caller then falls
        back to the full unpickle-and-check, so the peek is purely an
        optimization, never a correctness dependency.
        """
        try:
            with open(path, "rb") as handle:
                head = handle.read(_PICKLE_PEEK_BYTES)
        except OSError:
            return None
        match = _PICKLE_FP_RE.search(head)
        return match.group(1).decode() if match else None

    def _load_sidecar(self, path: Path, fingerprint: str) -> dict | None:
        """Read a pickle sidecar; ``None`` on absence, damage or staleness.

        Staleness is decided from the fingerprint *peeked* out of the
        file's first bytes whenever possible, so a stale entry is
        rejected without deserializing its (potentially large) payload.
        """
        if not path.exists():
            return None
        peeked = self._peek_sidecar_fingerprint(path)
        if peeked is not None and peeked != fingerprint:
            self._log(f"discarding stale sidecar {path.name} (header peek)")
            self.stats.bump("sidecar_stale_skipped")
            self.stats.bump("sidecar_invalid")
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if payload.get("fingerprint") == fingerprint:
                self.stats.bump("bytes_deserialized", path.stat().st_size)
                return payload
            self._log(f"discarding stale sidecar {path.name}")
        except Exception as exc:
            self._log(f"discarding corrupt sidecar {path.name}: {exc}")
        self.stats.bump("sidecar_invalid")
        return None

    def _store_sidecar(self, path: Path, payload: dict) -> None:
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._replace_into(tmp, path)

    # ------------------------------------------------------------------
    # Trace stage.
    # ------------------------------------------------------------------
    def _record_trace_hit(self, key: str, columnar: ColumnarTrace) -> None:
        self.stats.bump("trace_cache_hits")
        telemetry = get_telemetry()
        if telemetry.enabled:
            # Cache hits skip the executor, so feed the instruction-mix
            # counters from the columnar arrays instead — same numbers
            # either way.
            record_columnar_warps(telemetry, columnar, opcode_labels())

    def adopt_shared(
        self,
        abbr: str,
        columnar: ColumnarTrace,
        fingerprint: str,
        nbytes: int = 0,
    ) -> None:
        """Pre-seed a benchmark's trace from a shared-memory segment.

        Pool workers call this with the views of an
        :class:`~repro.experiments.shm.AdoptedSegment` before running:
        :meth:`run` then starts from the parent's already-materialized
        columns instead of touching the disk cache at all.  The
        fingerprint travels with the handle and is re-checked against
        the worker's own kernel/scale at use, so an adopted segment can
        never smuggle in a stale trace.
        """
        self._adopted[self._normalize(abbr)] = (columnar, fingerprint, nbytes)

    def _obtain_trace(
        self, key: str, built: BuiltWorkload, warp_size: int
    ) -> tuple[KernelTrace | ColumnarTrace, str]:
        """Load a fingerprint-matching cached trace or execute and cache.

        A cache hit returns the :class:`ColumnarTrace` exactly as it
        lies on disk — under the default ``mmap`` transport its arrays
        are read-only memory maps of the v5 banks, so the hit copies
        nothing.  Legacy v3 ``.npz`` entries are still read (and
        upgraded to v5 in place) when no v5 entry exists.  Callers that
        need the event form either hand it to the batch classifier
        (which materializes events once, during classification) or call
        ``.to_trace()`` themselves.  A cache miss executes and returns
        the event-form :class:`KernelTrace` directly.
        """
        fingerprint = cachekey.trace_fingerprint(built.kernel, self.scale, warp_size)
        if warp_size == 32:
            adopted = self._adopted.get(key)
            if adopted is not None and adopted[1] == fingerprint:
                self.stats.bump("trace_shm_adopted")
                self.stats.bump("bytes_mapped", adopted[2])
                self._log(f"adopted shared-memory trace for {key}")
                self._record_trace_hit(key, adopted[0])
                return adopted[0], fingerprint
        path = None
        if self.cache_dir is not None:
            stem = self._trace_stem(key, warp_size)
            path = self._trace_path(key, warp_size)
            if self.transport != "legacy":
                with self.stats.timer(
                    "trace_load", benchmark=key, warp_size=warp_size
                ):
                    columnar, status, entry = load_columnar_v5(
                        self.cache_dir, stem, fingerprint
                    )
                if status == "hit":
                    self.stats.bump("bytes_mapped", entry.bytes_mapped)
                    self._log(f"mapped v5 trace for {key} (warp {warp_size})")
                    self._record_trace_hit(key, columnar)
                    return columnar, fingerprint
                if status in ("stale", "corrupt"):
                    self._log(f"discarding {status} v5 trace entry for {key}")
                    self.stats.bump("trace_cache_invalid")
            if path.exists():
                try:
                    with self.stats.timer("trace_load", benchmark=key, warp_size=warp_size):
                        columnar = load_columnar(path, expected_fingerprint=fingerprint)
                except TraceError as exc:
                    self._log(f"discarding cached trace {path.name}: {exc}")
                    self.stats.bump("trace_cache_invalid")
                else:
                    self.stats.bump("bytes_deserialized", _columnar_nbytes(columnar))
                    self._log(f"loaded cached trace for {key} (warp {warp_size})")
                    if self.transport != "legacy":
                        # Write-through upgrade: the next hit on this
                        # entry is a zero-copy map, not a decompress.
                        with self.stats.timer(
                            "trace_save", benchmark=key, warp_size=warp_size
                        ):
                            save_columnar_v5(
                                columnar, self.cache_dir, stem, fingerprint
                            )
                        self.stats.bump("cache_migrated_v5")
                    self._record_trace_hit(key, columnar)
                    return columnar, fingerprint
            self.stats.bump("trace_cache_misses")
        self._log(f"executing {key} at scale {self.scale.name!r} warp {warp_size}")
        self.stats.bump("trace_executions")
        with self.stats.timer("trace_execute", benchmark=key, warp_size=warp_size):
            trace = run_kernel(
                built.kernel, built.launch, built.memory, warp_size=warp_size
            )
        if path is not None:
            with self.stats.timer("trace_save", benchmark=key, warp_size=warp_size):
                if self.transport == "legacy":
                    # Write-then-rename so a concurrent reader never
                    # sees a half-written archive (np.savez only
                    # appends ".npz" to names lacking it, so the temp
                    # name must keep the suffix).
                    tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp.npz")
                    save_trace(trace, tmp, fingerprint=fingerprint)
                    self._replace_into(tmp, path)
                else:
                    save_columnar_v5(
                        trace.to_columnar(), self.cache_dir, stem, fingerprint
                    )
        return trace, fingerprint

    def _obtain_classified(
        self, run: BenchmarkRun
    ) -> list[list[ClassifiedEvent]]:
        """Classified stream for one run (cached or computed).

        This is :class:`BenchmarkRun`'s lazy ``classified`` loader —
        nothing here executes until a consumer actually reads the
        per-event stream, so a warm run that only replays results
        sidecars (or only touches the columnar banks) never unpickles
        the event list at all.  When the trace is columnar and the
        batch engine is selected, classification runs straight off the
        columnar arrays and materializes the event form as a by-product
        — one object per event total, shared between ``run.trace`` and
        the classified stream.
        """
        key = run.abbr
        fingerprint = cachekey.classified_fingerprint(
            run.trace_fingerprint, STAGE_VERSION, self.classifier
        )
        path = None
        if self.cache_dir is not None:
            path = self._sidecar_path(key, "classified")
            payload = self._load_sidecar(path, fingerprint)
            if payload is not None:
                self.stats.bump("classified_cache_hits")
                return payload["classified"]
            self.stats.bump("classified_cache_misses")
        with self.stats.timer("classify", benchmark=key):
            if run._trace is None and self.classifier == "batch":
                trace, classified = classify_columnar_batch(
                    run.columnar, run.built.kernel.num_registers
                )
                run._trace = trace
            else:
                classified = classify_trace_with(
                    run.trace, run.built.kernel.num_registers, self.classifier
                )
        if path is not None:
            self._store_sidecar(
                path, {"fingerprint": fingerprint, "classified": classified}
            )
        return classified

    # ------------------------------------------------------------------
    def benchmark_names(self) -> list[str]:
        """All benchmark abbreviations in Table 2 order."""
        return [spec.abbr for spec in all_workloads()]

    def run(self, abbr: str) -> BenchmarkRun:
        """Execute (or fetch) one benchmark's functional trace.

        With ``cache_dir`` set, traces persist across processes as
        ``.npz`` files and classified streams as pickle sidecars, both
        validated against a content fingerprint before reuse.
        """
        key = self._normalize(abbr)
        if key not in self._runs:
            spec = workload_by_name(key)
            built = spec.builder(self.scale)
            trace, fingerprint = self._obtain_trace(key, built, 32)
            columnar = trace if isinstance(trace, ColumnarTrace) else None
            if self.scale.synthetic_events > 0:
                # Synthetic tier: what was executed (and cached) above is
                # the *seed* trace.  The run carries a deferred
                # materializer instead of the replicated whole trace, so
                # a streamed pass (which consumes the replica generator)
                # never pays for — or holds — the 10^6+-event form.
                seed = columnar if columnar is not None else trace.to_columnar()
                replicas = synthetic_replicas(seed, self.scale)
                self._seeds[key] = (seed, replicas)
                self._log(
                    f"{key}: synthetic tier, {replicas} replicas of "
                    f"{seed.num_events} seed events"
                )
                self._runs[key] = BenchmarkRun(
                    abbr=key,
                    built=built,
                    trace_fingerprint=fingerprint,
                    columnar_loader=self._materialize_synthetic,
                    warp_size=seed.warp_size,
                    classified_loader=self._obtain_classified,
                )
            else:
                self._runs[key] = BenchmarkRun(
                    abbr=key,
                    built=built,
                    trace=None if columnar is not None else trace,
                    trace_fingerprint=fingerprint,
                    columnar=columnar,
                    classified_loader=self._obtain_classified,
                )
        return self._runs[key]

    def _materialize_synthetic(self, run: BenchmarkRun) -> ColumnarTrace:
        """Build the whole replicated trace (the non-streaming arm)."""
        seed, replicas = self._seeds[run.abbr]
        self._log(
            f"materializing synthetic {run.abbr}: {replicas} replicas, "
            f"{seed.num_events * replicas} events"
        )
        self.stats.bump("synthetic_materializations")
        with self.stats.timer("synthetic_materialize", benchmark=run.abbr):
            return materialize_synthetic(seed, replicas)

    def trace_with_warp_size(self, abbr: str, warp_size: int) -> KernelTrace:
        """Re-execute a benchmark with a different warp size (Figure 10).

        Shares the same fingerprint-checked on-disk cache as :meth:`run`,
        with the warp size in the cache key, so warp-64 traces are
        executed once per cache directory rather than once per process.
        """
        key = self._normalize(abbr)
        if warp_size == 32:
            return self.run(key).trace
        token = (key, warp_size)
        if token not in self._warp_traces:
            spec = workload_by_name(key)
            built = spec.builder(self.scale)
            trace, _ = self._obtain_trace(key, built, warp_size)
            if isinstance(trace, ColumnarTrace):
                trace = trace.to_trace()
            self._warp_traces[token] = trace
        return self._warp_traces[token]

    # ------------------------------------------------------------------
    def static_widths(self, abbr: str) -> tuple[int, ...]:
        """Per-register guaranteed ``enc`` table from the width analysis.

        Architecture-independent (a pure function of the kernel), cached
        per benchmark and fed to the ``static_compress`` interpretation
        by both engines.  Cheap relative to tracing, so it is recomputed
        per process rather than persisted; the results sidecars it feeds
        are keyed on :data:`~repro.analysis.static_.widths.WIDTH_ANALYSIS_VERSION`.
        """
        key = self._normalize(abbr)
        if key not in self._static_widths:
            run = self.run(key)
            with self.stats.timer("width_analysis", benchmark=key):
                self._static_widths[key] = analyze_widths(
                    run.built.kernel, warp_size=run.warp_size
                ).register_enc
        return self._static_widths[key]

    def _widths_for(self, abbr: str, arch: ArchitectureConfig):
        return self.static_widths(abbr) if arch.static_compression else None

    def processed(
        self, abbr: str, arch: ArchitectureConfig
    ) -> list[list[ProcessedEvent]]:
        """Per-architecture processed events for one benchmark."""
        key = (self._normalize(abbr), arch.name)
        if key not in self._processed:
            run = self.run(key[0])
            widths = self._widths_for(key[0], arch)
            with self.stats.timer("process", benchmark=key[0], arch=arch.name):
                self._processed[key] = process_classified(
                    run.classified, arch, run.warp_size, static_widths=widths
                )
        return self._processed[key]

    def adopt_bank_hints(self, hints: dict[str, str]) -> None:
        """Pre-seed v5 bank stems -> fingerprints verified by the parent.

        Pool workers receive the parent's already-verified manifest set
        (:meth:`prefetch` collects it from every store and clean load),
        so their presence probes — chunk-grid completeness checks in
        particular — skip the per-manifest re-read.
        """
        self._bank_hints.update(hints)
        if hints:
            self.stats.bump("bank_hints_adopted", len(hints))

    def _load_column_banks(self, stem: str, fingerprint: str, kind: str):
        """Open one v5 column-bank entry; ``None`` unless a clean hit."""
        if self.cache_dir is None or self.transport == "legacy":
            return None
        if self._bank_hints.get(stem) == fingerprint:
            self.stats.bump("bank_hint_hits")
        entry, status = store.load_entry(self.cache_dir, stem, fingerprint)
        if status == "hit" and entry.kind == kind:
            self.stats.bump(f"{kind}_cache_hits")
            self.stats.bump("bytes_mapped", entry.bytes_mapped)
            self._bank_hints[stem] = fingerprint
            return entry
        if status == "hit" or status in ("stale", "corrupt"):
            self._log(f"discarding {status} {kind} banks {stem}")
            self.stats.bump("sidecar_invalid")
        self.stats.bump(f"{kind}_cache_misses")
        return None

    def _store_column_banks(
        self,
        stem: str,
        fingerprint: str,
        kind: str,
        warp_size: int,
        arrays,
        extra_meta: dict | None = None,
    ) -> None:
        if self.cache_dir is None or self.transport == "legacy":
            return
        meta = {"warp_size": int(warp_size)}
        if extra_meta:
            meta.update(extra_meta)
        store.store_entry(
            self.cache_dir,
            stem,
            fingerprint=fingerprint,
            kind=kind,
            meta=meta,
            arrays=arrays,
        )
        self._bank_hints[stem] = fingerprint

    def classified_columns(self, abbr: str) -> ClassifiedColumns:
        """Columnar classified stream (architecture-independent, shared
        by every architecture's batch interpretation).

        Persisted as v5 ``ccols`` banks: a warm hit maps the arrays
        read-only and never touches the classified event pickle.
        """
        key = self._normalize(abbr)
        if key not in self._classified_columns:
            run = self.run(key)
            fingerprint = cachekey.columns_fingerprint(
                run.trace_fingerprint, STAGE_VERSION, self.classifier
            )
            stem = self._stage_stem(key, "ccols")
            entry = self._load_column_banks(stem, fingerprint, "ccols")
            if entry is not None:
                self._classified_columns[key] = ClassifiedColumns.from_arrays(
                    int(entry.meta["warp_size"]), entry.arrays
                )
                return self._classified_columns[key]
            with self.stats.timer("columns", benchmark=key):
                ccols = ClassifiedColumns.from_classified(
                    run.classified, run.warp_size, columnar=run.columnar
                )
            self._store_column_banks(
                stem, fingerprint, "ccols", ccols.warp_size, ccols.as_arrays()
            )
            self._classified_columns[key] = ccols
        return self._classified_columns[key]

    def processed_columns(self, abbr: str, arch: ArchitectureConfig) -> ProcessedColumns:
        """Per-architecture columnar processed trace for one benchmark.

        Persisted as v5 ``pcols`` banks keyed on the interpretation
        closure only (not the SM engine or energy parameters), so
        re-simulating under a different SM engine replays these banks
        instead of re-interpreting.
        """
        key = (self._normalize(abbr), arch.name)
        if key not in self._processed_columns:
            run = self.run(key[0])
            fingerprint = cachekey.processed_fingerprint(
                run.trace_fingerprint,
                arch,
                self.config,
                STAGE_VERSION,
                engine=self.arch_engine,
                classifier=self.classifier,
                analysis_version=(
                    WIDTH_ANALYSIS_VERSION if arch.static_compression else None
                ),
            )
            stem = self._stage_stem(key[0], f"pcols_{arch.name}")
            entry = self._load_column_banks(stem, fingerprint, "pcols")
            if entry is not None:
                self._processed_columns[key] = ProcessedColumns.from_arrays(
                    int(entry.meta["warp_size"]), entry.arrays
                )
                return self._processed_columns[key]
            ccols = self.classified_columns(key[0])
            widths = self._widths_for(key[0], arch)
            with self.stats.timer("process", benchmark=key[0], arch=arch.name):
                pcols = process_columns(ccols, arch, static_widths=widths)
            self._store_column_banks(
                stem, fingerprint, "pcols", pcols.warp_size, pcols.as_arrays()
            )
            self._processed_columns[key] = pcols
        return self._processed_columns[key]

    def _results_fingerprint(self, run: BenchmarkRun, arch: ArchitectureConfig) -> str:
        return cachekey.stage_fingerprint(
            run.trace_fingerprint,
            arch,
            self.config,
            self.params,
            STAGE_VERSION,
            engine=self.arch_engine,
            sm_engine=self.sm_engine,
            analysis_version=(
                WIDTH_ANALYSIS_VERSION if arch.static_compression else None
            ),
        )

    def _load_results(self, key: str, arch: ArchitectureConfig) -> bool:
        """Try the timing/power sidecar; ``True`` when both were restored."""
        if self.cache_dir is None:
            return False
        run = self.run(key)
        path = self._sidecar_path(key, f"results_{arch.name}")
        payload = self._load_sidecar(path, self._results_fingerprint(run, arch))
        if payload is None:
            self.stats.bump("result_cache_misses")
            return False
        self._timing[(key, arch.name)] = payload["timing"]
        self._power[(key, arch.name)] = payload["power"]
        self.stats.bump("result_cache_hits")
        return True

    def _store_results(self, key: str, arch: ArchitectureConfig) -> None:
        if self.cache_dir is None:
            return
        run = self.run(key)
        self._store_sidecar(
            self._sidecar_path(key, f"results_{arch.name}"),
            {
                "fingerprint": self._results_fingerprint(run, arch),
                "timing": self._timing[(key, arch.name)],
                "power": self._power[(key, arch.name)],
            },
        )

    def warps_per_cta(self, abbr: str) -> int | None:
        """Warps per CTA of one benchmark's launch (barrier scope)."""
        run = self.run(self._normalize(abbr))
        return run.built.launch.warps_per_cta(run.warp_size)

    def _compute_timing(self, key: str, arch: ArchitectureConfig) -> None:
        self._log(f"timing {key} on {arch.name}")
        run = self.run(key)
        warps_per_cta = run.built.launch.warps_per_cta(run.warp_size)
        with self.stats.timer(
            "timing", benchmark=key, arch=arch.name, sm_engine=self.sm_engine
        ):
            if self.arch_engine == "batch":
                self._timing[(key, arch.name)] = simulate_architecture_columns(
                    self.classified_columns(key),
                    self.processed_columns(key, arch),
                    arch,
                    self.config,
                    warps_per_cta=warps_per_cta,
                    sm_engine=self.sm_engine,
                )
            else:
                self._timing[(key, arch.name)] = simulate_architecture(
                    self.processed(key, arch),
                    arch,
                    self.config,
                    warps_per_cta=warps_per_cta,
                    sm_engine=self.sm_engine,
                )

    # ------------------------------------------------------------------
    # Chunk-streaming compute (``chunk_events`` set).
    # ------------------------------------------------------------------
    def _chunk_stem(self, key: str, stage: str, index: int) -> str:
        """Stem of one per-chunk v5 bank entry (grid size in the name,
        so different chunk sizes never collide)."""
        return self._stage_stem(key, f"{stage}_ck{self.chunk_events}_{index:05d}")

    def _chunk_index_stem(self, key: str) -> str:
        return self._stage_stem(key, f"ccols_ck{self.chunk_events}_idx")

    def _chunk_stream(self, key: str) -> Iterator:
        """The chunk source: replica generator for synthetic tiers
        (nothing whole-trace is ever built), ``iter_chunks`` otherwise."""
        assert self.chunk_events is not None
        run = self.run(key)
        seeded = self._seeds.get(key)
        if seeded is not None:
            return iter_synthetic_chunks(seeded[0], seeded[1], self.chunk_events)
        columnar = run.columnar
        if columnar is None:
            columnar = run.trace.to_columnar()
            run._columnar = columnar
        return iter_chunks(columnar, self.chunk_events)

    def _warm_chunk_index(self, key: str, fingerprint: str) -> dict | None:
        """The chunk-grid index entry's meta, on a clean hit only."""
        if self.cache_dir is None or self.transport == "legacy":
            return None
        entry, status = store.load_entry(
            self.cache_dir, self._chunk_index_stem(key), fingerprint
        )
        if entry is None or entry.kind != "ckidx":
            if status in ("stale", "corrupt"):
                self._log(f"discarding {status} chunk index for {key}")
                self.stats.bump("sidecar_invalid")
            return None
        if int(entry.meta.get("chunk_events", -1)) != self.chunk_events:
            return None
        return entry.meta

    def _chunks_all_present(self, stems: list[str], fingerprint: str) -> bool:
        """O(1)-per-chunk probe that every bank entry exists and matches.

        Checked *before* streaming so a warm pass never discovers a
        missing chunk halfway through (carry state cannot restart
        mid-stream; a miss would force a full recompute anyway).
        """
        if self.cache_dir is None or self.transport == "legacy":
            return False
        for stem in stems:
            if self._bank_hints.get(stem) == fingerprint:
                # Verified by this runner (or shipped from the parent's
                # verification via adopt_bank_hints): no manifest re-read.
                self.stats.bump("bank_probes_skipped")
                continue
            manifest = store.peek_manifest(self.cache_dir, stem)
            if manifest is None or manifest.get("fingerprint") != fingerprint:
                return False
            self._bank_hints[stem] = fingerprint
        return True

    def _iter_ccols_fragments(
        self, key: str, force_cold: bool = False
    ) -> Iterator[tuple[dict, ClassifiedColumns]]:
        """Yield ``(chunk_meta, ccols)`` per chunk, warm or cold.

        Warm: every chunk's ``ccols`` banks verified present up front,
        then streamed one memory-mapped fragment at a time — the full
        classified columns never coexist.  Cold: classify each chunk
        with the carry threaded through, persist its banks, and write
        the grid index entry last (so a crashed writer never leaves a
        complete-looking index over missing chunks).
        """
        run = self.run(key)
        fingerprint = cachekey.columns_fingerprint(
            run.trace_fingerprint, STAGE_VERSION, self.classifier
        )
        if not force_cold:
            index = self._warm_chunk_index(key, fingerprint)
            if index is not None:
                stems = [
                    self._chunk_stem(key, "ccols", i)
                    for i in range(int(index["num_chunks"]))
                ]
                if self._chunks_all_present(stems, fingerprint):
                    for stem in stems:
                        entry = self._load_column_banks(stem, fingerprint, "ccols")
                        if entry is None:
                            raise _ChunkBankMiss(stem)
                        yield entry.meta, ClassifiedColumns.from_arrays(
                            int(entry.meta["warp_size"]), entry.arrays
                        )
                    return
        carry = ClassifierCarry()
        chunk_metas: list[dict] = []
        for chunk in self._chunk_stream(key):
            with self.stats.timer("classify", benchmark=key):
                classified = classify_columnar_chunk(
                    chunk, run.built.kernel.num_registers, carry
                )
                ccols = ClassifiedColumns.from_classified(
                    classified, chunk.columnar.warp_size, columnar=chunk.columnar
                )
            del classified
            meta = {
                "warp_size": int(ccols.warp_size),
                "index": int(chunk.index),
                "start_event": int(chunk.start_event),
                "warp_start": int(chunk.warp_start),
                "first_warp_continued": bool(chunk.first_warp_continued),
                "last_warp_continues": bool(chunk.last_warp_continues),
            }
            self._store_column_banks(
                self._chunk_stem(key, "ccols", chunk.index),
                fingerprint,
                "ccols",
                ccols.warp_size,
                ccols.as_arrays(),
                extra_meta=meta,
            )
            chunk_metas.append(meta)
            yield meta, ccols
        if self.cache_dir is not None and self.transport != "legacy":
            store.store_entry(
                self.cache_dir,
                self._chunk_index_stem(key),
                fingerprint=fingerprint,
                kind="ckidx",
                meta={
                    "chunk_events": int(self.chunk_events),
                    "num_chunks": len(chunk_metas),
                    "chunks": chunk_metas,
                },
            )
            self._bank_hints[self._chunk_index_stem(key)] = fingerprint

    def _stream_arch_pass(
        self, key: str, arch: ArchitectureConfig, force_cold: bool = False
    ) -> None:
        """One architecture's full streamed pass: chunked classify /
        process / aggregate, then the SM simulation barrier."""
        run = self.run(key)
        widths = self._widths_for(key, arch)
        accountant = PowerAccountant(arch, self.params, self.config)
        pfp = cachekey.processed_fingerprint(
            run.trace_fingerprint,
            arch,
            self.config,
            STAGE_VERSION,
            engine=self.arch_engine,
            classifier=self.classifier,
            analysis_version=(
                WIDTH_ANALYSIS_VERSION if arch.static_compression else None
            ),
        )
        cfp = cachekey.columns_fingerprint(
            run.trace_fingerprint, STAGE_VERSION, self.classifier
        )
        pcols_warm = False
        if not force_cold:
            index = self._warm_chunk_index(key, cfp)
            if index is not None:
                pcols_warm = self._chunks_all_present(
                    [
                        self._chunk_stem(key, f"pcols_{arch.name}", i)
                        for i in range(int(index["num_chunks"]))
                    ],
                    pfp,
                )
        carry = ArchCarry()
        agg = _PowerAggregates()
        warp_ops: list[list] = []
        for meta, ccols in self._iter_ccols_fragments(key, force_cold=force_cold):
            warp_start = int(meta["warp_start"])
            if pcols_warm:
                entry = self._load_column_banks(
                    self._chunk_stem(key, f"pcols_{arch.name}", int(meta["index"])),
                    pfp,
                    "pcols",
                )
                if entry is None:
                    raise _ChunkBankMiss(f"pcols_{arch.name} chunk {meta['index']}")
                pcols = ProcessedColumns.from_arrays(
                    int(entry.meta["warp_size"]), entry.arrays
                )
            else:
                with self.stats.timer("process", benchmark=key, arch=arch.name):
                    pcols = process_columns_chunk(
                        ccols,
                        arch,
                        carry,
                        warp_start=warp_start,
                        first_warp_continued=bool(meta["first_warp_continued"]),
                        last_warp_continues=bool(meta["last_warp_continues"]),
                        static_widths=widths,
                    )
                self._store_column_banks(
                    self._chunk_stem(key, f"pcols_{arch.name}", int(meta["index"])),
                    pfp,
                    "pcols",
                    pcols.warp_size,
                    pcols.as_arrays(),
                    extra_meta={"warp_start": warp_start, "index": int(meta["index"])},
                )
            agg.merge(accountant.aggregates_from_columns(pcols, warp_base=warp_start))
            fragments = build_timing_ops_columns(ccols, pcols, arch, self.config)
            for local, fragment in enumerate(fragments):
                warp = warp_start + local
                if warp < len(warp_ops):
                    warp_ops[warp].extend(fragment)
                else:
                    warp_ops.append(fragment)
            self.stats.bump("stream_chunks")
            # Gauges land in the stats registry: the shared one when
            # telemetry is on, else the runner's private registry — so
            # ``--stats-json`` reports them without a telemetry session.
            record_bytes_in_flight(
                _array_bytes(ccols) + _array_bytes(pcols), self.stats.telemetry
            )
            record_peak_rss(self.stats.telemetry)
        warps_per_cta = run.built.launch.warps_per_cta(run.warp_size)
        with self.stats.timer(
            "timing", benchmark=key, arch=arch.name, sm_engine=self.sm_engine
        ):
            timing = simulate_warp_ops(
                warp_ops,
                arch,
                self.config,
                warps_per_cta=warps_per_cta,
                sm_engine=self.sm_engine,
            )
        with self.stats.timer("power", benchmark=key, arch=arch.name):
            power = accountant.account_aggregates(agg, timing)
        self._timing[(key, arch.name)] = timing
        self._power[(key, arch.name)] = power

    def _compute_streamed(self, key: str, arch: ArchitectureConfig) -> None:
        """Streamed timing + power for one pair (fills both caches).

        A chunk bank vanishing between the up-front presence probe and
        its load (concurrent sweep) aborts the pass; carry state cannot
        resume mid-stream, so the recovery is one full cold recompute.
        """
        self._log(f"streaming {key} on {arch.name} (chunk_events={self.chunk_events})")
        try:
            self._stream_arch_pass(key, arch)
        except _ChunkBankMiss as exc:
            self._log(f"chunk bank vanished mid-stream ({exc}); recomputing cold")
            self.stats.bump("stream_cold_restarts")
            self._stream_arch_pass(key, arch, force_cold=True)
        self._store_results(key, arch)

    def timing(self, abbr: str, arch: ArchitectureConfig) -> TimingResult:
        """Cycle-level result for one (benchmark, architecture) pair."""
        key = self._normalize(abbr)
        if (key, arch.name) not in self._timing and not self._load_results(key, arch):
            if self.chunk_events is not None:
                self._compute_streamed(key, arch)
            else:
                self._compute_timing(key, arch)
        return self._timing[(key, arch.name)]

    def timeline(
        self,
        abbr: str,
        arch: ArchitectureConfig,
        recorder,
        sm_engine: str | None = None,
    ) -> TimingResult:
        """Re-run timing with a flight recorder threaded through.

        Always simulates (never replays a sidecar — recorded events
        cannot come from a cache) and never stores the result, so the
        recorded run cannot pollute the recorder-free result cache.
        ``sm_engine`` overrides the runner's engine for one run (the
        ``repro timeline --compare-engines`` path drives both engines
        over the same streams).
        """
        key = self._normalize(abbr)
        engine = sm_engine or self.sm_engine
        run = self.run(key)
        warps_per_cta = run.built.launch.warps_per_cta(run.warp_size)
        self._log(f"timeline {key} on {arch.name} ({engine} engine)")
        with self.stats.timer(
            "timeline", benchmark=key, arch=arch.name, sm_engine=engine
        ):
            if self.arch_engine == "batch":
                return simulate_architecture_columns(
                    self.classified_columns(key),
                    self.processed_columns(key, arch),
                    arch,
                    self.config,
                    warps_per_cta=warps_per_cta,
                    sm_engine=engine,
                    recorder=recorder,
                )
            return simulate_architecture(
                self.processed(key, arch),
                arch,
                self.config,
                warps_per_cta=warps_per_cta,
                sm_engine=engine,
                recorder=recorder,
            )

    def power(self, abbr: str, arch: ArchitectureConfig) -> PowerReport:
        """Power report for one (benchmark, architecture) pair."""
        key = self._normalize(abbr)
        if (key, arch.name) not in self._power and not self._load_results(key, arch):
            timing = self.timing(key, arch)
            if (key, arch.name) in self._power:
                # A streamed timing pass accounts power chunk by chunk
                # alongside timing, so both landed in one pass.
                return self._power[(key, arch.name)]
            accountant = PowerAccountant(arch, self.params, self.config)
            with self.stats.timer("power", benchmark=key, arch=arch.name):
                if self.arch_engine == "batch":
                    self._power[(key, arch.name)] = accountant.account_columns(
                        self.processed_columns(key, arch), timing
                    )
                else:
                    self._power[(key, arch.name)] = accountant.account(
                        self.processed(key, arch), timing
                    )
            self._store_results(key, arch)
        return self._power[(key, arch.name)]

    # ------------------------------------------------------------------
    # Matrix prefetch (the parallel experiment engine's front door).
    # ------------------------------------------------------------------
    def prefetch(
        self,
        names: Sequence[str] | None = None,
        jobs: int = 1,
        warp_sizes: Sequence[int] = (32,),
        arches: Sequence[ArchitectureConfig] | None = None,
        progress: Callable[[str, int, int], None] | None = None,
    ) -> RunnerStats:
        """Warm every cacheable stage of the benchmark × arch matrix.

        With ``jobs > 1`` the matrix fans out over a process pool
        (:func:`repro.experiments.parallel.run_matrix`); workers share
        results exclusively through the on-disk cache, so ``cache_dir``
        is required.  Worker statistics merge into :attr:`stats` and the
        merged stats are returned.  Serial (``jobs == 1``) prefetch
        works with or without a cache directory.
        """
        wanted = [self._normalize(name) for name in (names or self.benchmark_names())]
        arch_list = tuple(arches) if arches is not None else paper_architectures()
        jobs = max(1, int(jobs))
        if progress is None and self.verbose:
            progress = lambda abbr, done, total: self._log(
                f"prefetch {done}/{total}: {abbr}"
            )
        with self.stats.timer("prefetch"):
            if jobs == 1 or len(wanted) <= 1:
                for index, abbr in enumerate(wanted):
                    self.run(abbr)
                    for warp_size in warp_sizes:
                        self.trace_with_warp_size(abbr, warp_size)
                    for arch in arch_list:
                        self.power(abbr, arch)
                    if progress is not None:
                        progress(abbr, index + 1, len(wanted))
            else:
                if self.cache_dir is None:
                    raise ValueError(
                        "parallel prefetch requires cache_dir: worker "
                        "processes communicate through the on-disk cache"
                    )
                from repro.experiments.parallel import run_matrix
                from repro.experiments.shm import ShmExporter

                # In-process fan-out shortcut: any columnar trace this
                # runner already materialized is exported once into
                # shared memory so workers adopt the pages instead of
                # re-opening the disk entry.  The one export copy is
                # what ``bytes_copied`` counts; each adoption counts as
                # mapped bytes in the worker that performs it.
                handles = {}
                with ShmExporter() as exporter:
                    for abbr in wanted:
                        seeded = self._runs.get(abbr)
                        if seeded is None or abbr in self._seeds:
                            # Synthetic runs export nothing: workers
                            # regenerate replicas from the (cached)
                            # seed rather than shipping 10^6+ events.
                            continue
                        columnar = seeded.columnar
                        if columnar is None:
                            # Freshly-executed trace: pack it once so
                            # the copy is shared by every worker.
                            columnar = seeded.trace.to_columnar()
                            seeded._columnar = columnar
                        with self.stats.timer("shm_export", benchmark=abbr):
                            handle = exporter.export_columnar(
                                columnar, seeded.trace_fingerprint
                            )
                        handles[abbr] = handle
                        self.stats.bump("shm_exports")
                        self.stats.bump("bytes_copied", handle.total_bytes)
                    # Ship each worker the manifest set this runner has
                    # already verified for its benchmark, so the worker
                    # skips per-manifest re-probes on warm banks.
                    bank_hints = {
                        abbr: hints
                        for abbr in wanted
                        if (
                            hints := tuple(
                                (stem, fp)
                                for stem, fp in self._bank_hints.items()
                                if stem.startswith(f"{abbr}_")
                            )
                        )
                    }
                    worker_stats = run_matrix(
                        names=wanted,
                        scale=self.scale.name,
                        cache_dir=self.cache_dir,
                        jobs=jobs,
                        warp_sizes=tuple(warp_sizes),
                        arches=arch_list,
                        config=self.config,
                        params=self.params,
                        progress=progress,
                        telemetry=get_telemetry().enabled,
                        classifier=self.classifier,
                        arch_engine=self.arch_engine,
                        sm_engine=self.sm_engine,
                        transport=self.transport,
                        chunk_events=self.chunk_events,
                        shm_handles=handles or None,
                        bank_hints=bank_hints or None,
                    )
                self.stats.merge(worker_stats)
        return self.stats
