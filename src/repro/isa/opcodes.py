"""Opcode definitions for the PTX-like SIMT instruction set.

The instruction set is deliberately small but covers everything the
paper's mechanisms distinguish between:

* arithmetic/logic instructions (integer and float) — the only class
  prior scalar architectures could scalarize,
* special-function instructions (sin, cos, exp2, ...) — 3-24x the energy
  of an ALU op and newly scalarizable under G-Scalar,
* memory instructions (global/shared loads and stores) — scalarizable
  address computation, and
* control instructions (branches) — the source of divergence.
"""

from __future__ import annotations

import enum


class OpCategory(enum.Enum):
    """Execution-pipeline class of an opcode."""

    ALU = "alu"
    SFU = "sfu"
    MEM = "mem"
    CTRL = "ctrl"


class Opcode(enum.Enum):
    """All opcodes understood by the functional executor."""

    # Integer arithmetic/logic.
    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IMAD = "imad"
    IDIV = "idiv"
    IREM = "irem"
    IMIN = "imin"
    IMAX = "imax"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # Integer comparisons (produce 0 / 1).
    SETEQ = "seteq"
    SETNE = "setne"
    SETLT = "setlt"
    SETLE = "setle"
    SETGT = "setgt"
    SETGE = "setge"
    # Select and move.
    SELP = "selp"
    MOV = "mov"
    # Float arithmetic (operates on IEEE-754 bit patterns in registers).
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FFMA = "ffma"
    FMIN = "fmin"
    FMAX = "fmax"
    FSETLT = "fsetlt"
    FSETGT = "fsetgt"
    FSETLE = "fsetle"
    FSETGE = "fsetge"
    FABS = "fabs"
    FNEG = "fneg"
    # Conversions.
    I2F = "i2f"
    F2I = "f2i"
    # Special-function unit.
    SIN = "sin"
    COS = "cos"
    EX2 = "ex2"
    LG2 = "lg2"
    RSQRT = "rsqrt"
    RCP = "rcp"
    SQRT = "sqrt"
    FDIV = "fdiv"
    # Memory.
    LD_GLOBAL = "ld.global"
    ST_GLOBAL = "st.global"
    LD_SHARED = "ld.shared"
    ST_SHARED = "st.shared"
    # Control (appears only as block terminators).
    BRA = "bra"
    JMP = "jmp"
    EXIT = "exit"
    # CTA-wide barrier (a body instruction, unlike the terminators).
    BAR = "bar.sync"
    # Special register-to-register decompress move inserted by the
    # hardware-assisted technique of Section 3.3.
    DECOMPRESS_MOV = "decompress.mov"


_SFU_OPCODES = frozenset(
    {
        Opcode.SIN,
        Opcode.COS,
        Opcode.EX2,
        Opcode.LG2,
        Opcode.RSQRT,
        Opcode.RCP,
        Opcode.SQRT,
        Opcode.FDIV,
    }
)

_MEM_OPCODES = frozenset(
    {Opcode.LD_GLOBAL, Opcode.ST_GLOBAL, Opcode.LD_SHARED, Opcode.ST_SHARED}
)

_CTRL_OPCODES = frozenset({Opcode.BRA, Opcode.JMP, Opcode.EXIT, Opcode.BAR})

_LOAD_OPCODES = frozenset({Opcode.LD_GLOBAL, Opcode.LD_SHARED})
_STORE_OPCODES = frozenset({Opcode.ST_GLOBAL, Opcode.ST_SHARED})

#: Relative per-lane energy of each SFU opcode versus a plain ALU op.
#: The paper cites a 3-24x range for special-function instructions
#: [GPUWattch, ISCA 2013]; the per-opcode factors below span that range.
SFU_ENERGY_FACTOR: dict[Opcode, float] = {
    Opcode.SIN: 24.0,
    Opcode.COS: 24.0,
    Opcode.EX2: 16.0,
    Opcode.LG2: 16.0,
    Opcode.RSQRT: 10.0,
    Opcode.RCP: 8.0,
    Opcode.SQRT: 12.0,
    Opcode.FDIV: 14.0,
}

#: Long-latency integer ops (the paper singles out integer DIV in LC).
LONG_LATENCY_ALU = frozenset({Opcode.IDIV, Opcode.IREM})


def category_of(opcode: Opcode) -> OpCategory:
    """Return the pipeline category an opcode executes on."""
    if opcode in _SFU_OPCODES:
        return OpCategory.SFU
    if opcode in _MEM_OPCODES:
        return OpCategory.MEM
    if opcode in _CTRL_OPCODES:
        return OpCategory.CTRL
    return OpCategory.ALU


def is_load(opcode: Opcode) -> bool:
    """True for memory reads."""
    return opcode in _LOAD_OPCODES


def is_store(opcode: Opcode) -> bool:
    """True for memory writes."""
    return opcode in _STORE_OPCODES


def is_sfu(opcode: Opcode) -> bool:
    """True for special-function instructions."""
    return opcode in _SFU_OPCODES


def is_control(opcode: Opcode) -> bool:
    """True for block terminators."""
    return opcode in _CTRL_OPCODES


def source_arity(opcode: Opcode) -> int:
    """Number of data source operands the opcode consumes."""
    if opcode in (Opcode.IMAD, Opcode.FFMA, Opcode.SELP):
        return 3
    if opcode in (
        Opcode.NOT,
        Opcode.MOV,
        Opcode.FABS,
        Opcode.FNEG,
        Opcode.I2F,
        Opcode.F2I,
        Opcode.SIN,
        Opcode.COS,
        Opcode.EX2,
        Opcode.LG2,
        Opcode.RSQRT,
        Opcode.RCP,
        Opcode.SQRT,
        Opcode.DECOMPRESS_MOV,
        Opcode.LD_GLOBAL,
        Opcode.LD_SHARED,
    ):
        return 1
    if opcode in (Opcode.ST_GLOBAL, Opcode.ST_SHARED):
        return 2  # address, value
    if opcode is Opcode.BRA:
        return 1  # condition
    if opcode in (Opcode.JMP, Opcode.EXIT, Opcode.BAR):
        return 0
    return 2


def has_destination(opcode: Opcode) -> bool:
    """True if the opcode writes a destination register."""
    return not (opcode in _STORE_OPCODES or opcode in _CTRL_OPCODES)
