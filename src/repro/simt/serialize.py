"""Trace serialization: save/load dynamic traces as compressed ``.npz``.

Functional execution is the most expensive stage of the pipeline for
large launches; persisting traces lets analysis runs (figures,
architecture sweeps) reuse them across processes.  The on-disk layout
*is* the columnar form (:class:`~repro.simt.trace.ColumnarTrace`): flat
per-event arrays with offset tables for the ragged fields and one
``(n_rows, warp_size)`` matrix of destination snapshots.  A cache hit
therefore needs no per-event reconstruction — :func:`load_columnar`
hands the arrays straight to the batch classifier; the event form is
only materialized (:func:`load_trace`) for consumers that walk
:class:`~repro.simt.trace.TraceEvent` objects.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TraceError
from repro.simt.trace import (
    ID_TO_OPCODE,
    OPCODE_TO_ID,
    ColumnarTrace,
    KernelTrace,
)

#: Backwards-compatible aliases for the stable opcode numbering, which
#: now lives beside the columnar form in :mod:`repro.simt.trace`.
_OPCODE_TO_ID = OPCODE_TO_ID
_ID_TO_OPCODE = ID_TO_OPCODE

#: Bump whenever the archive layout or header schema changes; cached
#: traces with a different version are re-executed, never re-interpreted.
#: Version 2 added the embedded content ``fingerprint`` header field.
#: Version 3 stores the columnar form directly: warp ids/lengths moved
#: from the JSON header into proper integer arrays, so the header stays
#: O(1) regardless of warp count and a load is array-copy only.
_FORMAT_VERSION = 3

#: Array fields of :class:`ColumnarTrace`, in archive order.
_ARRAY_FIELDS = (
    "warp_ids",
    "warp_lengths",
    "opcode_ids",
    "dst",
    "masks",
    "blocks",
    "varying",
    "scalar_nonreg",
    "src_offsets",
    "src_flat",
    "values_index",
    "values",
    "addr_index",
    "addresses",
)


def save_columnar(
    columnar: ColumnarTrace, path: str | Path, fingerprint: str | None = None
) -> None:
    """Write a columnar trace to ``path`` (``.npz``, compressed).

    ``fingerprint`` (see :mod:`repro.experiments.cachekey`) is stored in
    the header so :func:`load_columnar` can reject stale caches whose
    source kernel, scale or warp size has since changed.
    """
    header = {
        "version": _FORMAT_VERSION,
        "fingerprint": fingerprint,
        "kernel_name": columnar.kernel_name,
        "warp_size": columnar.warp_size,
    }
    np.savez_compressed(
        Path(path),
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        **{name: getattr(columnar, name) for name in _ARRAY_FIELDS},
    )


def save_trace(
    trace: KernelTrace, path: str | Path, fingerprint: str | None = None
) -> None:
    """Write an event-form trace to ``path`` (packs to columnar first)."""
    save_columnar(trace.to_columnar(), path, fingerprint=fingerprint)


def save_columnar_v5(
    columnar: ColumnarTrace,
    cache_dir: str | Path,
    stem: str,
    fingerprint: str,
) -> None:
    """Write a columnar trace as a v5 manifest + page-aligned banks.

    Unlike :func:`save_columnar`, nothing is compressed: each array
    lands as its own ``.npy`` bank so :func:`load_columnar_v5` can hand
    back read-only memory-mapped views instead of decompressed copies.
    The fingerprint lives in the manifest, so staleness is decided
    without opening a single bank.
    """
    from repro.experiments import store

    store.store_entry(
        cache_dir,
        stem,
        fingerprint=fingerprint,
        kind="trace",
        meta={
            "format_version": _FORMAT_VERSION,
            "kernel_name": columnar.kernel_name,
            "warp_size": columnar.warp_size,
        },
        arrays={name: getattr(columnar, name) for name in _ARRAY_FIELDS},
    )


def load_columnar_v5(
    cache_dir: str | Path,
    stem: str,
    expected_fingerprint: str | None = None,
    mmap: bool = True,
):
    """Read a v5 trace entry; returns ``(columnar, status, entry)``.

    ``status`` follows :func:`repro.experiments.store.load_entry`
    (``hit`` / ``absent`` / ``stale`` / ``corrupt``); on anything but a
    hit the first two members are ``(None, status, None)`` and callers
    fall back to the legacy ``.npz`` or re-execute.  On a hit the
    columnar arrays are read-only mmap views; ``entry`` carries the
    ``bytes_mapped`` / ``bytes_deserialized`` transport counters.
    """
    from repro.experiments import store

    entry, status = store.load_entry(
        cache_dir, stem, expected_fingerprint, mmap=mmap
    )
    if entry is None:
        return None, status, None
    meta = entry.meta
    if (
        entry.kind != "trace"
        or meta.get("format_version") != _FORMAT_VERSION
        or set(entry.arrays) != set(_ARRAY_FIELDS)
    ):
        return None, "corrupt", None
    columnar = ColumnarTrace(
        kernel_name=meta["kernel_name"],
        warp_size=meta["warp_size"],
        **{name: entry.arrays[name] for name in _ARRAY_FIELDS},
    )
    if int(columnar.warp_lengths.sum()) != columnar.num_events:
        return None, "corrupt", None
    return columnar, "hit", entry


def load_columnar(
    path: str | Path, expected_fingerprint: str | None = None
) -> ColumnarTrace:
    """Read the columnar trace previously written to ``path``.

    Raises :class:`~repro.errors.TraceError` when the file is corrupt,
    written by a different format version, or — with
    ``expected_fingerprint`` given — was produced from a kernel/scale/
    warp-size combination other than the one being requested (a *stale*
    cache entry).  Callers are expected to recover by re-executing and
    overwriting; nothing here is fatal to an experiment run.
    """
    try:
        return _load_columnar_strict(Path(path), expected_fingerprint)
    except TraceError:
        raise
    except Exception as exc:  # zip/json/array damage of any shape
        raise TraceError(f"corrupt or unreadable trace file {path}: {exc}") from exc


def load_trace(
    path: str | Path, expected_fingerprint: str | None = None
) -> KernelTrace:
    """Read a trace and materialize the event form."""
    return load_columnar(path, expected_fingerprint).to_trace()


def _load_columnar_strict(
    path: Path, expected_fingerprint: str | None
) -> ColumnarTrace:
    with np.load(path) as archive:
        header = json.loads(bytes(archive["header"]).decode())
        if header.get("version") != _FORMAT_VERSION:
            raise TraceError(
                f"unsupported trace format version {header.get('version')!r}"
            )
        if (
            expected_fingerprint is not None
            and header.get("fingerprint") != expected_fingerprint
        ):
            raise TraceError(
                f"stale trace cache {path}: fingerprint "
                f"{header.get('fingerprint')!r} != expected {expected_fingerprint!r}"
            )
        arrays = {name: archive[name] for name in _ARRAY_FIELDS}

    columnar = ColumnarTrace(
        kernel_name=header["kernel_name"],
        warp_size=header["warp_size"],
        **arrays,
    )
    if int(columnar.warp_lengths.sum()) != columnar.num_events:
        raise TraceError(
            f"corrupt trace file {path}: warp lengths sum to "
            f"{int(columnar.warp_lengths.sum())}, have "
            f"{columnar.num_events} events"
        )
    return columnar
