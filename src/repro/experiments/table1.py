"""Table 1 — simulator configuration."""

from __future__ import annotations

from repro.config import GpuConfig
from repro.experiments.tables import render_table


def compute(config: GpuConfig | None = None) -> list[tuple[str, str]]:
    """Table 1 rows from the active configuration."""
    config = config or GpuConfig()
    return [
        ("# of SMs", str(config.num_sms)),
        ("Registers per SM", f"{config.registers_per_sm_bytes // 1024}KB"),
        ("SM Frequency", f"{config.sm_frequency_ghz}GHz"),
        ("Register File Banks", str(config.register_file_banks)),
        ("NoC Frequency", f"{config.noc_frequency_ghz}GHz"),
        ("OC per SM", str(config.operand_collectors_per_sm)),
        ("Warp Size", str(config.warp_size)),
        ("Schedulers per SM", str(config.schedulers_per_sm)),
        ("SIMT EXE Width", str(config.simt_width)),
        ("L1$ per SM", f"{config.l1_cache_bytes // 1024}KB"),
        ("Threads per SM", str(config.threads_per_sm)),
        ("Memory Channels", str(config.memory_channels)),
        ("CTAs per SM", str(config.ctas_per_sm)),
        ("L2$ Size", f"{config.l2_cache_bytes // 1024}KB"),
    ]


def render(config: GpuConfig | None = None) -> str:
    """Table 1 as text."""
    return render_table(
        ["parameter", "value"],
        compute(config),
        title="Table 1: simulator configuration",
    )
