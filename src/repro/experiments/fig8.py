"""Figure 8 — register-file access distribution for operand values.

Paper reference: averages of 36% scalar, 17% 3-byte, 4% 2-byte and
7% 1-byte accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.similarity import CATEGORIES, AccessDistribution, access_distribution
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import render_table


@dataclass
class Fig8Row:
    abbr: str
    distribution: AccessDistribution


@dataclass
class Fig8Data:
    rows: list[Fig8Row]

    def average_fractions(self) -> dict[str, float]:
        if not self.rows:
            return {name: 0.0 for name in CATEGORIES}
        sums = {name: 0.0 for name in CATEGORIES}
        for row in self.rows:
            for name, value in row.distribution.fractions().items():
                sums[name] += value
        return {name: value / len(self.rows) for name, value in sums.items()}


def compute(runner: ExperimentRunner) -> Fig8Data:
    """Regenerate Figure 8's stacked distribution."""
    rows = []
    for abbr in runner.benchmark_names():
        run = runner.run(abbr)
        rows.append(Fig8Row(abbr=abbr, distribution=access_distribution(run.classified)))
    return Fig8Data(rows=rows)


def render(data: Fig8Data) -> str:
    """Figure 8 as a text table."""
    table_rows = []
    for row in data.rows:
        fractions = row.distribution.fractions()
        table_rows.append(
            [row.abbr] + [f"{100 * fractions[name]:.1f}" for name in CATEGORIES]
        )
    averages = data.average_fractions()
    table_rows.append(["AVG"] + [f"{100 * averages[name]:.1f}" for name in CATEGORIES])
    body = render_table(
        ["bench"] + list(CATEGORIES),
        table_rows,
        title="Figure 8: RF access distribution (% of operand reads)",
    )
    return body + "\npaper averages: scalar 36, 3-byte 17, 2-byte 4, 1-byte 7"
