"""Aggregation helpers bridging the pipeline to the telemetry registry.

Each helper takes a whole batch (one warp's trace, one warp's classified
events, one event's register accesses, one benchmark's energy
breakdown), folds it into compact per-metric aggregates, and records
those — so the instrumented modules pay one ``enabled`` check plus one
aggregation pass per batch, never per-instruction telemetry calls in
their hot loops.  Everything here is duck-typed against the trace /
classified-event / access objects, which keeps :mod:`repro.obs` free of
imports from the simulation packages (no import cycles).

Metric vocabulary (all exported under the ``repro_`` prefix by
:mod:`repro.obs.prometheus`):

===============================================  =============================
``instructions_total{category,opcode}``          dynamic opcode mix
``warp_instructions`` (histogram)                instructions retired per warp
``reconvergence_stack_depth`` (histogram)        max SIMT-stack depth per warp
``scalar_class_total{class}``                    Figure 9 bucket counts
``scalar_class_transitions_total{from,to}``      consecutive-class transitions
``enc_prefix_total{enc}``                        enc-prefix distribution
``compression_bytes_saved_total{enc}``           data-array bytes elided
``divergent_mask_checks_total{result}``          §4.2 BVR mask match/miss
``decompress_moves_total``                       §3.3 inserted moves
``rf_accesses_total{kind}``                      register-file access shapes
``sidecar_accesses_total``                       BVR/EBR sidecar touches
``regfile_bank_activations_total{bank}``         per-bank activation counts
``energy_pj_total{component,arch}``              component energy counters
===============================================  =============================
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.telemetry import Telemetry


def record_warp_trace(
    telemetry: Telemetry, warp: Any, max_stack_depth: int
) -> None:
    """Roll one executed warp's trace into the registry.

    Records the dynamic opcode mix, the instructions retired by this
    warp (histogram over warps) and the deepest reconvergence-stack
    nesting the warp reached.
    """
    mix: dict[tuple[str, str], int] = {}
    for event in warp.events:
        key = (event.category.value, event.opcode.value)
        mix[key] = mix.get(key, 0) + 1
    for (category, opcode), count in mix.items():
        telemetry.count(
            "instructions", count, category=category, opcode=opcode
        )
    telemetry.observe("warp_instructions", len(warp.events))
    telemetry.observe("reconvergence_stack_depth", max_stack_depth)


def record_columnar_warps(
    telemetry: Telemetry, columnar: Any, opcode_labels: dict[int, tuple[str, str]]
) -> None:
    """Roll a columnar trace's warps into the registry (cache-hit path).

    The array-side counterpart of :func:`record_warp_trace`: the
    dynamic opcode mix comes from one ``np.unique`` over the stored
    opcode ids and the per-warp instruction histogram from the warp
    length table, so a trace loaded from cache reports the same
    ``instructions_total`` / ``warp_instructions`` numbers as the run
    that executed it.  ``opcode_labels`` maps stored opcode ids to
    ``(category, opcode)`` label pairs (see
    :func:`repro.simt.trace.opcode_labels`), keeping this module free
    of simulation-package imports.  The reconvergence-stack depth is an
    executor-side observable and is not recorded here.
    """
    import numpy as np

    ids, counts = np.unique(columnar.opcode_ids, return_counts=True)
    for opcode_id, count in zip(ids.tolist(), counts.tolist()):
        category, opcode = opcode_labels[opcode_id]
        telemetry.count("instructions", count, category=category, opcode=opcode)
    for length in columnar.warp_lengths.tolist():
        telemetry.observe("warp_instructions", length)


def record_classified_warp(
    telemetry: Telemetry,
    events: Iterable[Any],
    warp_size: int,
    previous_class: str | None = None,
) -> str | None:
    """Roll one warp's classified event stream into the registry.

    Covers the tracker-level distributions the paper's figures are
    built from: ScalarClass counts and consecutive-class transitions,
    the enc-prefix distribution of full register writes (byte-wise
    compressor output, comparable with
    :func:`repro.compression.stats.compare_trace`), the data-array
    bytes the prefix elides, the §4.2 divergent-mask match/miss rate,
    and the §3.3 decompress-move count.

    ``previous_class`` resumes the consecutive-class transition counter
    across a chunk boundary for a warp split mid-stream; the returned
    value is the fragment's last class (or ``previous_class`` when the
    fragment is empty), which the chunked classifier carries to the
    warp's next fragment so chunked telemetry matches whole-trace
    telemetry exactly.
    """
    classes: dict[str, int] = {}
    transitions: dict[tuple[str, str], int] = {}
    enc_counts: dict[int, int] = {}
    mask_checks = {"match": 0, "miss": 0}
    decompress_moves = 0

    for item in events:
        name = item.scalar_class.value
        classes[name] = classes.get(name, 0) + 1
        if previous_class is not None:
            key = (previous_class, name)
            transitions[key] = transitions.get(key, 0) + 1
        previous_class = name
        if item.needs_decompress_move:
            decompress_moves += 1
        for source in item.sources:
            if source.encoding.divergent:
                mask_checks["match" if source.scalar_for_read else "miss"] += 1
        encoding = item.dst_encoding
        if encoding is not None and not encoding.divergent:
            enc_counts[encoding.enc] = enc_counts.get(encoding.enc, 0) + 1

    for name, count in classes.items():
        telemetry.count("scalar_class", count, **{"class": name})
    for (source, target), count in transitions.items():
        telemetry.count(
            "scalar_class_transitions", count, **{"from": source, "to": target}
        )
    for enc, count in enc_counts.items():
        telemetry.count("enc_prefix", count, enc=enc)
        if enc:
            telemetry.count(
                "compression_bytes_saved", count * enc * warp_size, enc=enc
            )
    for result, count in mask_checks.items():
        if count:
            telemetry.count("divergent_mask_checks", count, result=result)
    if decompress_moves:
        telemetry.count("decompress_moves", decompress_moves)
    return previous_class


def record_rf_accesses(
    telemetry: Telemetry,
    accesses: Iterable[Any],
    warp_index: int,
    num_banks: int,
) -> None:
    """Roll one event's register-file accesses into the registry.

    Bank attribution uses the file's standard interleaved mapping —
    architectural register *r* of warp *w* lands in bank
    ``(r + w) % num_banks`` (:mod:`repro.regfile.registerfile`).
    """
    for access in accesses:
        kind = access.kind.value
        telemetry.count("rf_accesses", kind=kind)
        if access.sidecar:
            telemetry.count("sidecar_accesses")
        telemetry.count(
            "regfile_bank_activations",
            bank=(access.register + warp_index) % num_banks,
            op="read" if "read" in kind else "write",
        )


def record_rf_accesses_columns(
    telemetry: Telemetry,
    columns: Any,
    kind_labels: dict[int, str],
    num_banks: int,
    warp_base: int = 0,
) -> None:
    """Roll a whole columnar access table into the registry.

    The array-side counterpart of :func:`record_rf_accesses`: one pass
    over the flat access table of a
    ``repro.scalar.columns.ProcessedColumns`` produces the same
    ``rf_accesses_total{kind}`` / ``sidecar_accesses_total`` /
    ``regfile_bank_activations_total{bank,op}`` totals as recording
    every event's accesses individually (the counters are additive).
    ``kind_labels`` maps stored access-kind ids to their label strings,
    keeping this module free of simulation-package imports.
    ``warp_base`` is the global index of the table's first warp — the
    chunk-streaming pipeline records one fragment at a time, and bank
    attribution must use global warp indices for chunked totals to
    match the whole-trace pass.
    """
    import numpy as np

    kind_ids = columns.acc_kind_ids
    if kind_ids.size == 0:
        return
    ids, counts = np.unique(kind_ids, return_counts=True)
    for kind_id, count in zip(ids.tolist(), counts.tolist()):
        telemetry.count("rf_accesses", count, kind=kind_labels[kind_id])

    sidecar_touches = int(np.count_nonzero(columns.acc_sidecar))
    if sidecar_touches:
        telemetry.count("sidecar_accesses", sidecar_touches)

    # Bank attribution: register r of warp w -> bank (r + w) % num_banks.
    warp_of_event = np.repeat(
        np.arange(warp_base, warp_base + len(columns.warp_lengths), dtype=np.int64),
        columns.warp_lengths,
    )
    warp_of_access = np.repeat(warp_of_event, np.diff(columns.acc_offsets))
    banks = (columns.acc_registers.astype(np.int64) + warp_of_access) % num_banks
    is_read = np.array(
        ["read" in kind_labels[kind_id] for kind_id in range(len(kind_labels))],
        dtype=bool,
    )[kind_ids]
    packed = banks * 2 + is_read
    combos, combo_counts = np.unique(packed, return_counts=True)
    for combo, count in zip(combos.tolist(), combo_counts.tolist()):
        telemetry.count(
            "regfile_bank_activations",
            count,
            bank=combo // 2,
            op="read" if combo % 2 else "write",
        )


def record_power_breakdown(
    telemetry: Telemetry, arch_name: str, breakdown: Any
) -> None:
    """Record one benchmark x architecture energy breakdown."""
    components = {
        "exec_alu": breakdown.exec_alu_pj,
        "exec_sfu": breakdown.exec_sfu_pj,
        "exec_mem": breakdown.exec_mem_pj,
        "rf": breakdown.rf_pj,
        "crossbar": breakdown.crossbar_pj,
        "compression": breakdown.compression_pj,
        "fds": breakdown.fds_pj,
        "memory": breakdown.memory_pj,
    }
    for component, picojoules in components.items():
        telemetry.count(
            "energy_pj", picojoules, component=component, arch=arch_name
        )
