"""Bring your own kernel: a cooperative reduction not in the paper's suite.

Shows how a downstream user adds a new workload to the analysis
pipeline: a multi-warp CTA block-sum with shared memory and
``bar.sync`` barriers — a shape none of the 17 proxies covers — then
asks the standard questions: how divergent is it, what can G-Scalar
scalarize, and what does that do to power?

Run with:  python examples/custom_kernel.py
"""

import numpy as np

from repro.analysis import access_distribution, divergence_stats
from repro.config import ArchitectureConfig
from repro.isa import KernelBuilder, validate_kernel
from repro.power import PowerAccountant
from repro.scalar import classify_trace, process_classified, trace_statistics
from repro.simt import LaunchConfig, MemoryImage, run_kernel
from repro.timing import simulate_architecture


def reduction_kernel(cta_size=128):
    """Cross-warp tree reduction through shared memory.

    Every thread publishes its element; after a barrier, the active set
    halves each level (the classic reduction divergence pattern) with a
    barrier per level; lane 0 of the CTA writes the block sum.
    """
    b = KernelBuilder("block_reduce")
    tid = b.tid()
    lane_in_cta = b.iadd(b.imul(b.warp_in_cta(), 32), b.lane())
    x = b.ld_global(b.imad(tid, 4, 0x1000))
    b.st_shared(b.imul(lane_in_cta, 4), x)
    b.barrier()

    stride = b.mov(cta_size // 2)

    def still_reducing():
        return b.setgt(stride, 0)

    with b.while_(still_reducing):
        is_active = b.setlt(lane_in_cta, stride)
        with b.if_(is_active):
            mine = b.ld_shared(b.imul(lane_in_cta, 4))
            theirs = b.ld_shared(b.imul(b.iadd(lane_in_cta, stride), 4))
            b.st_shared(b.imul(lane_in_cta, 4), b.iadd(mine, theirs))
        stride = b.shr(stride, 1, dst=stride)
        b.barrier()  # level complete before anyone reads across warps

    is_leader = b.seteq(lane_in_cta, 0)
    with b.if_(is_leader):
        total = b.ld_shared(b.mov(0))
        b.st_global(b.imad(b.ctaid(), 4, 0x2000), total)
    return b.finish()


def main():
    cta = 128
    kernel = reduction_kernel(cta)
    report = validate_kernel(kernel)
    print(f"kernel: {report.num_blocks} blocks, "
          f"{report.num_instructions} static instructions, "
          f"{report.num_registers} registers")

    memory = MemoryImage()
    data = np.arange(512, dtype=np.uint32)
    memory.bind_array(0x1000, data)
    launch = LaunchConfig(grid_dim=4, cta_dim=cta)
    trace = run_kernel(kernel, launch, memory)

    # Functional correctness first.
    sums = memory.read_array(0x2000, 4)
    expected = data.reshape(4, cta).sum(axis=1, dtype=np.uint32)
    assert np.array_equal(sums, expected), (sums, expected)
    print(f"block sums verified: {sums.tolist()}")

    classified = classify_trace(trace, kernel.num_registers)
    div = divergence_stats(classified)
    stats = trace_statistics(classified)
    dist = access_distribution(classified)
    print(f"\ndivergent instructions : {100 * div.divergent_fraction:.1f}%")
    print(f"scalar-eligible        : {100 * stats.eligible_fraction:.1f}%")
    print("RF reads by class      : "
          + ", ".join(f"{k}={100 * v:.0f}%"
                      for k, v in dist.fractions().items() if v > 0.01))

    print("\npower efficiency:")
    warps_per_cta = launch.warps_per_cta(trace.warp_size)
    for arch in (ArchitectureConfig.baseline(), ArchitectureConfig.gscalar()):
        processed = process_classified(classified, arch, trace.warp_size)
        timing = simulate_architecture(processed, arch, warps_per_cta=warps_per_cta)
        power = PowerAccountant(arch).account(processed, timing)
        print(f"  {arch.name:10s} ipc/W = {power.ipc_per_watt:.3f}")


if __name__ == "__main__":
    main()
