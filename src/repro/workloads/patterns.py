"""Recurring code-generation patterns shared by the workload proxies.

These capture the idioms that create the paper's value-similarity
classes in real CUDA code:

* broadcast parameter loads (all lanes hit one address) -> scalar
  registers and MEM-scalar instructions,
* per-thread streaming loads of similar data -> n-byte registers,
* per-half parameter selection -> half-warp-scalar registers (§4.3),
* flag-driven branches from :func:`repro.workloads.datagen.boundary_mask_pattern`
  -> warps that diverge with a majority path, feeding divergent-scalar
  chains (§4.2).
"""

from __future__ import annotations

from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Reg

# Shared address map (bytes).  Regions are generously spaced so no
# workload ever overlaps its arrays.
PARAMS_BASE = 0x1000
FLAGS_BASE = 0x8000
INPUT_A = 0x10_0000
INPUT_B = 0x20_0000
INPUT_C = 0x30_0000
INPUT_D = 0x40_0000
OUTPUT_A = 0x80_0000
OUTPUT_B = 0x90_0000


def thread_element_addr(b: KernelBuilder, tid: Reg, base: int, stride: int = 4) -> Reg:
    """Per-thread address ``base + tid*stride`` — the canonical
    coalesced-access pattern (affine, 2-3 byte similar)."""
    return b.imad(tid, stride, base)


def load_broadcast(b: KernelBuilder, addr: int) -> Reg:
    """Load one parameter all lanes share: a MEM-scalar instruction
    producing a scalar register."""
    return b.ld_global(b.mov(addr))


def load_thread_flag(b: KernelBuilder, tid: Reg, base: int = FLAGS_BASE) -> Reg:
    """Load this thread's 0/1 branch flag."""
    return b.ld_global(thread_element_addr(b, tid, base))


def half_parameter(b: KernelBuilder, base: int) -> Reg:
    """Load a per-half-warp parameter: lanes 0-15 read ``base``, lanes
    16-31 read ``base+4``.  The result is a half-warp-scalar register
    (each half holds one value; the halves differ)."""
    lane = b.lane()
    half_index = b.shr(lane, 4)
    return b.ld_global(b.imad(half_index, 4, base))


def quarter_parameter(b: KernelBuilder, base: int) -> Reg:
    """Per-16-lane parameter for warp sizes above 32 (Figure 10)."""
    lane = b.lane()
    quarter_index = b.shr(lane, 4)
    return b.ld_global(b.imad(quarter_index, 4, base))
