"""Regenerate Figure 1: divergent / divergent-scalar instruction share.

Paper: 28% of instructions divergent on average; 45% of divergent
instructions are divergent-scalar.
"""

from repro.experiments import fig1

from conftest import run_once


def bench_fig1(benchmark, shared_runner):
    data = run_once(benchmark, fig1.compute, shared_runner)
    print()
    print(fig1.render(data))

    # Shape: divergence is widespread and a large share of it is scalar.
    assert 0.10 < data.average_divergent < 0.50
    assert data.average_scalar_share_of_divergent > 0.35

    by_abbr = {row.abbr: row.stats for row in data.rows}
    # The paper names lbm and heartwall as the most divergent.
    for heavy in ("LBM", "HW"):
        assert by_abbr[heavy].divergent_fraction > 0.3
    # And mri-q / sgemm as non-divergent.
    for convergent in ("MQ", "MM"):
        assert by_abbr[convergent].divergent_fraction < 0.05
    # §5.2: HS / LBM / SAD carry large divergent-scalar populations.
    for scalar_heavy in ("HS", "LBM", "SAD"):
        assert by_abbr[scalar_heavy].divergent_scalar_fraction > 0.10
