"""Warp schedulers: greedy-then-oldest (GTO) and loose round-robin (LRR).

Each SM has two schedulers (Table 1); warps are statically partitioned
by parity, as in Fermi.  A scheduler picks at most one ready warp per
cycle.  GTO keeps issuing from the warp it last served until that warp
stalls, then falls back to the oldest ready warp — GPGPU-Sim's default
and the configuration the paper evaluates.
"""

from __future__ import annotations

from repro.config import SchedulerPolicy
from repro.errors import TimingError


class WarpScheduler:
    """One of the SM's schedulers, owning a fixed set of warp slots."""

    def __init__(self, warp_ids: list[int], policy: SchedulerPolicy):
        self.warp_ids = list(warp_ids)
        self.policy = policy
        self._last_issued: int | None = None
        self._rr_position = 0

    def pick(self, ready: set[int]) -> int | None:
        """Choose a warp to issue from among this scheduler's ready warps."""
        candidates = [w for w in self.warp_ids if w in ready]
        if not candidates:
            return None
        if self.policy is SchedulerPolicy.GTO:
            if self._last_issued in ready and self._last_issued in self.warp_ids:
                chosen = self._last_issued
            else:
                chosen = min(candidates)  # oldest = lowest warp id
        elif self.policy is SchedulerPolicy.LRR:
            ordered = self.warp_ids[self._rr_position :] + self.warp_ids[: self._rr_position]
            chosen = next(w for w in ordered if w in ready)
            self._rr_position = (self.warp_ids.index(chosen) + 1) % len(self.warp_ids)
        else:
            raise TimingError(f"unknown scheduler policy {self.policy}")
        self._last_issued = chosen
        return chosen

    def forget(self, slot: int) -> None:
        """Drop greedy preference for a slot whose warp retired.

        ``_last_issued`` names a *slot*, not a warp: when the warp in
        that slot retires and a new warp is activated into it, greedy
        preference must not silently transfer to the unrelated
        newcomer — GTO's greediness is a property of the warp that was
        issuing, and that warp is gone.
        """
        if self._last_issued == slot:
            self._last_issued = None


def partition_warps(
    num_warps: int, num_schedulers: int, policy: SchedulerPolicy
) -> list[WarpScheduler]:
    """Statically partition warps across schedulers by parity."""
    if num_schedulers < 1:
        raise TimingError(f"need >= 1 scheduler, got {num_schedulers}")
    partitions: list[list[int]] = [[] for _ in range(num_schedulers)]
    for warp in range(num_warps):
        partitions[warp % num_schedulers].append(warp)
    return [WarpScheduler(p, policy) for p in partitions]


def scheduler_of_slot(slot: int, num_schedulers: int) -> int:
    """The scheduler owning a warp slot under the parity partition.

    Single source of truth shared by both SM engines and the timeline
    labels: slot ``s`` always belongs to scheduler ``s % n`` — the same
    assignment :func:`partition_warps` builds explicitly.
    """
    return slot % num_schedulers


def partition_slots(scheduler_index: int, num_slots: int, num_schedulers: int) -> range:
    """The slots one scheduler owns, in age (slot-id) order."""
    return range(scheduler_index, num_slots, num_schedulers)
