"""Divergence statistics (Figure 1).

Figure 1 reports, per benchmark, the percentage of dynamic instructions
that are divergent and the percentage that are *divergent scalar* —
divergent instructions whose active-lane operands make them eligible
for scalar execution (§1: 28% and 45%-of-divergent on average).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scalar.eligibility import ScalarClass
from repro.scalar.tracker import ClassifiedEvent


@dataclass(frozen=True)
class DivergenceStats:
    """Figure 1 numbers for one benchmark."""

    total_instructions: int
    divergent_instructions: int
    divergent_scalar_instructions: int

    @property
    def divergent_fraction(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.divergent_instructions / self.total_instructions

    @property
    def divergent_scalar_fraction(self) -> float:
        """Divergent-scalar instructions as a fraction of *total*."""
        if self.total_instructions == 0:
            return 0.0
        return self.divergent_scalar_instructions / self.total_instructions

    @property
    def scalar_share_of_divergent(self) -> float:
        """Divergent-scalar as a fraction of divergent (the 45% number)."""
        if self.divergent_instructions == 0:
            return 0.0
        return self.divergent_scalar_instructions / self.divergent_instructions


def divergence_stats(classified: list[list[ClassifiedEvent]]) -> DivergenceStats:
    """Compute Figure 1 statistics from a classified trace."""
    total = 0
    divergent = 0
    divergent_scalar = 0
    for warp_events in classified:
        for item in warp_events:
            total += 1
            if item.divergent:
                divergent += 1
                if item.scalar_class is ScalarClass.DIVERGENT_SCALAR:
                    divergent_scalar += 1
    return DivergenceStats(
        total_instructions=total,
        divergent_instructions=divergent,
        divergent_scalar_instructions=divergent_scalar,
    )
