"""Lint-baseline suppression: fail only on *new* diagnostics.

A baseline file records the currently-known diagnostics as a sorted
JSON array of stable keys.  ``repro lint --baseline FILE`` subtracts
the recorded findings from the gate so a newly-introduced rule (or a
newly-analyzed kernel) can land without flipping CI red, while any
diagnostic *not* in the baseline still fails the run.  Regenerate with
``repro lint --write-baseline FILE`` once the recorded findings are
triaged.

Keys deliberately exclude the message text: messages carry counts and
percentages that drift with workload scale, while ``(rule, kernel,
block, instruction)`` pins the finding's identity.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.static_.diagnostics import Diagnostic, LintReport

#: Format marker inside baseline files; bump on incompatible changes.
BASELINE_VERSION = 1

#: The identity of one suppressed finding.
BaselineKey = tuple[str, str, int | None, int | None]


def diagnostic_key(diagnostic: Diagnostic) -> BaselineKey:
    """The stable identity of one diagnostic."""
    return (
        diagnostic.rule,
        diagnostic.kernel,
        diagnostic.block_id,
        diagnostic.inst_index,
    )


def write_baseline(reports: list[LintReport], path: str | Path) -> int:
    """Record every current diagnostic; returns the number written."""
    keys = sorted(
        {diagnostic_key(d) for report in reports for d in report.diagnostics},
        key=lambda k: (k[0], k[1], k[2] if k[2] is not None else -1,
                       k[3] if k[3] is not None else -1),
    )
    payload = {
        "version": BASELINE_VERSION,
        "suppressed": [list(key) for key in keys],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(keys)


def load_baseline(path: str | Path) -> set[BaselineKey]:
    """Load a baseline's suppressed-diagnostic keys.

    Raises ``ValueError`` on a malformed or wrong-version file — a
    silently-ignored baseline would un-suppress everything and fail CI
    with a misleading wall of findings.
    """
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a lint baseline (expected version {BASELINE_VERSION})"
        )
    keys: set[BaselineKey] = set()
    for entry in payload.get("suppressed", []):
        rule, kernel, block, inst = entry
        keys.add((str(rule), str(kernel),
                  None if block is None else int(block),
                  None if inst is None else int(inst)))
    return keys


def unsuppressed(
    report: LintReport, suppressed: set[BaselineKey]
) -> list[Diagnostic]:
    """The report's diagnostics that are *not* in the baseline."""
    return [d for d in report.diagnostics if diagnostic_key(d) not in suppressed]
