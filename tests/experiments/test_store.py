"""Tests for the v5 zero-copy cache store (manifests + aligned banks)."""

import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.experiments import store


def _sample_arrays():
    return {
        "ints": np.arange(5000, dtype=np.int64),
        "floats": np.linspace(0.0, 1.0, 3000).reshape(100, 30),
        "bools": np.tile(np.array([True, False]), 700),
        "empty": np.empty((0,), dtype=np.int32),
    }


def _store_sample(cache_dir, fingerprint="a" * 16, stem="entry"):
    return store.store_entry(
        cache_dir,
        stem,
        fingerprint=fingerprint,
        kind="sample",
        meta={"answer": 42},
        arrays=_sample_arrays(),
        objects={"extra": {"nested": [1, 2, 3]}},
    )


class TestAlignedNpy:
    def test_data_offset_is_page_aligned(self, tmp_path):
        path = tmp_path / "bank.npy"
        nbytes, offset = store.write_aligned_npy(
            path, np.arange(100, dtype=np.uint16)
        )
        assert nbytes == 200
        assert offset % store.PAGE_ALIGN == 0
        assert path.stat().st_size == offset + nbytes

    def test_plain_np_load_still_reads_the_file(self, tmp_path):
        path = tmp_path / "bank.npy"
        original = np.arange(64, dtype=np.float32).reshape(8, 8)
        store.write_aligned_npy(path, original)
        assert np.array_equal(np.load(path), original)
        mapped = np.load(path, mmap_mode="r")
        assert np.array_equal(np.asarray(mapped), original)


class TestEntryRoundTrip:
    def test_hit_returns_read_only_mapped_arrays(self, tmp_path):
        _store_sample(tmp_path)
        entry, status = store.load_entry(tmp_path, "entry", "a" * 16)
        assert status == "hit"
        assert entry.kind == "sample"
        assert entry.meta == {"answer": 42}
        assert entry.objects == {"extra": {"nested": [1, 2, 3]}}
        for name, original in _sample_arrays().items():
            assert np.array_equal(entry.arrays[name], original)
            assert not entry.arrays[name].flags.writeable
        assert entry.bytes_mapped > 0
        with pytest.raises(ValueError):
            entry.arrays["ints"][0] = 99

    def test_no_mmap_copies_but_stays_read_only(self, tmp_path):
        _store_sample(tmp_path)
        entry, status = store.load_entry(tmp_path, "entry", "a" * 16, mmap=False)
        assert status == "hit"
        assert entry.bytes_mapped == 0
        assert entry.bytes_deserialized > 0
        assert not entry.arrays["ints"].flags.writeable

    def test_absent(self, tmp_path):
        entry, status = store.load_entry(tmp_path, "nothing", "a" * 16)
        assert (entry, status) == (None, "absent")

    def test_stale_fingerprint_rejected_from_manifest_alone(self, tmp_path):
        _store_sample(tmp_path)
        entry, status = store.load_entry(tmp_path, "entry", "b" * 16)
        assert (entry, status) == (None, "stale")

    def test_corrupt_manifest_rejected(self, tmp_path):
        manifest = _store_sample(tmp_path)
        manifest.write_bytes(b"not json")
        entry, status = store.load_entry(tmp_path, "entry", "a" * 16)
        assert (entry, status) == (None, "corrupt")

    def test_truncated_bank_rejected(self, tmp_path):
        _store_sample(tmp_path)
        bank = tmp_path / store.bank_dir_name("entry", "a" * 16) / "ints.npy"
        bank.write_bytes(bank.read_bytes()[:-100])
        entry, status = store.load_entry(tmp_path, "entry", "a" * 16)
        assert (entry, status) == (None, "corrupt")

    def test_foreign_layout_version_ignored(self, tmp_path):
        manifest = _store_sample(tmp_path)
        doc = json.loads(manifest.read_text())
        doc["layout"] = store.CACHE_LAYOUT_VERSION + 1
        manifest.write_text(json.dumps(doc))
        entry, status = store.load_entry(tmp_path, "entry", "a" * 16)
        assert (entry, status) == (None, "corrupt")


class TestReplacement:
    def test_replacing_entry_keeps_live_readers_consistent(self, tmp_path):
        """A reader holding mapped views survives the writer replacing
        the entry *and* the old banks being swept — POSIX keeps
        unlinked-but-mapped pages alive."""
        _store_sample(tmp_path, fingerprint="a" * 16)
        entry, status = store.load_entry(tmp_path, "entry", "a" * 16)
        assert status == "hit"
        before = entry.arrays["ints"].copy()

        store.store_entry(
            tmp_path,
            "entry",
            fingerprint="c" * 16,
            kind="sample",
            arrays={"ints": np.zeros(10, dtype=np.int64)},
        )
        swept = store.sweep_orphans(tmp_path, age_seconds=0.0)
        assert swept.orphan_bank_dirs == 1
        assert not (tmp_path / store.bank_dir_name("entry", "a" * 16)).exists()

        # The old views still read the old data.
        assert np.array_equal(entry.arrays["ints"], before)
        # A fresh open sees the replacement.
        fresh, status = store.load_entry(tmp_path, "entry", "c" * 16)
        assert status == "hit"
        assert np.array_equal(fresh.arrays["ints"], np.zeros(10, dtype=np.int64))


class TestSweep:
    def test_young_debris_is_left_alone(self, tmp_path):
        (tmp_path / "half-written.12345.tmp").write_bytes(b"x" * 64)
        swept = store.sweep_orphans(tmp_path, age_seconds=600.0)
        assert swept.tmp_files == 0
        assert (tmp_path / "half-written.12345.tmp").exists()

    def test_old_debris_is_reclaimed(self, tmp_path):
        tmp_file = tmp_path / "half-written.12345.tmp"
        tmp_file.write_bytes(b"x" * 64)
        npz_tmp = tmp_path / "HS_tiny.99.tmp.npz"
        npz_tmp.write_bytes(b"y" * 32)
        tmp_bank = tmp_path / "entry.00ff.v5.777.tmp"
        tmp_bank.mkdir()
        (tmp_bank / "ints.npy").write_bytes(b"z" * 16)
        old = time.time() - 3600
        for path in (tmp_file, npz_tmp, tmp_bank):
            os.utime(path, (old, old))
        swept = store.sweep_orphans(tmp_path, age_seconds=600.0)
        assert swept.tmp_files == 3
        assert swept.bytes_freed == 64 + 32 + 16
        assert list(tmp_path.iterdir()) == []

    def test_referenced_banks_are_never_swept(self, tmp_path):
        _store_sample(tmp_path)
        bank_dir = tmp_path / store.bank_dir_name("entry", "a" * 16)
        old = time.time() - 3600
        os.utime(bank_dir, (old, old))
        swept = store.sweep_orphans(tmp_path, age_seconds=0.0)
        assert swept.orphan_bank_dirs == 0
        assert bank_dir.exists()


class TestScan:
    def test_mixed_version_directory_inventoried(self, tmp_path):
        _store_sample(tmp_path)
        (tmp_path / "HS_tiny.npz").write_bytes(b"legacy npz bytes")
        (tmp_path / "HS_tiny_classified.pkl").write_bytes(b"legacy pickle")
        (tmp_path / "HS_tiny_results_gscalar.pkl").write_bytes(b"legacy pickle")
        (tmp_path / "debris.1.tmp").write_bytes(b"junk")
        report = store.scan_cache(tmp_path)
        assert report["stages"]["sample"]["entries"] == 1
        assert report["stages"]["trace_npz"]["entries"] == 1
        assert report["stages"]["classified_pickle"]["entries"] == 1
        assert report["stages"]["results_pickle"]["entries"] == 1
        assert report["orphans"]["tmp_files"] == 1
        assert report["total_bytes"] > 0

    def test_missing_directory_is_empty_report(self, tmp_path):
        report = store.scan_cache(tmp_path / "nope")
        assert report["stages"] == {}
        assert report["total_bytes"] == 0


def _race_writer(cache_dir, barrier, results):
    barrier.wait()
    try:
        store.store_entry(
            cache_dir,
            "raced",
            fingerprint="d" * 16,
            kind="sample",
            arrays={"ints": np.arange(200_000, dtype=np.int64)},
        )
        results.put("ok")
    except Exception as exc:  # pragma: no cover - failure reporting
        results.put(f"error: {exc!r}")


class TestConcurrency:
    def test_two_processes_race_the_same_entry(self, tmp_path):
        """Both writers survive the write-then-rename race; the loser
        discards its temp dir and the entry stays fully readable."""
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        results = ctx.Queue()
        writers = [
            ctx.Process(target=_race_writer, args=(tmp_path, barrier, results))
            for _ in range(2)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        assert [results.get(timeout=5) for _ in range(2)] == ["ok", "ok"]
        entry, status = store.load_entry(tmp_path, "raced", "d" * 16)
        assert status == "hit"
        assert np.array_equal(
            entry.arrays["ints"], np.arange(200_000, dtype=np.int64)
        )
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []
