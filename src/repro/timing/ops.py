"""Timing-level operations derived from processed trace events.

The cycle-level SM model does not care about operand *values* — only
about categories, register numbers (for banks and the scoreboard),
dispatch occupancy and memory coalescing.  :func:`build_timing_ops`
lowers one warp's :class:`~repro.scalar.architectures.ProcessedEvent`
stream into :class:`TimingOp` records, inserting the extra
decompress-move / scalar-RF-spill instructions the architecture view
requested and applying the scalar-execution dispatch savings
(a scalar SFU instruction dispatches in 1 cycle instead of 8 — §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import ArchitectureConfig, GpuConfig
from repro.isa.opcodes import LONG_LATENCY_ALU, OpCategory, Opcode, is_store
from repro.scalar.architectures import ProcessedEvent
from repro.simt.grid import int_to_mask

#: Pseudo bank id for the prior-work single-bank scalar register file.
SCALAR_RF_BANK = -1


@dataclass(frozen=True)
class TimingOp:
    """One instruction as the timing model sees it.

    ``src_regs`` feeds the scoreboard; ``src_banks`` (same order, plus
    possibly :data:`SCALAR_RF_BANK`) feeds operand-collector bank
    arbitration.
    """

    category: OpCategory
    dst: int | None
    src_regs: tuple[int, ...]
    src_banks: tuple[int, ...]
    dispatch_cycles: int
    long_latency: bool
    is_store: bool
    mem_segments: tuple[int, ...] = field(default_factory=tuple)
    is_shared_mem: bool = False
    #: True for decompress-moves / scalar-RF spills the architecture
    #: inserted; they consume cycles and energy but are not counted as
    #: useful work when computing IPC.
    inserted: bool = False
    #: True for ``bar.sync``: the warp stalls at issue until every
    #: unfinished warp of its CTA arrives.
    is_barrier: bool = False


def _bank_of(register: int, config: GpuConfig) -> int:
    return register % config.register_file_banks


def coalesce_addresses(
    addresses: np.ndarray, active_mask: int, warp_size: int, segment_bytes: int = 128
) -> tuple[int, ...]:
    """Unique memory segments touched by the active lanes of one access."""
    mask = int_to_mask(active_mask, warp_size)
    active = addresses[mask]
    if active.size == 0:
        return ()
    segments = np.unique(active // segment_bytes)
    return tuple(int(s) for s in segments)


def _dispatch_cycles(
    item: ProcessedEvent, arch: ArchitectureConfig, config: GpuConfig
) -> int:
    """Cycles an instruction occupies its pipeline's dispatch port.

    With ``arch.scalar_fast_dispatch`` a scalar-executed instruction
    needs a single dispatch cycle (§6's "as low as only one cycle");
    the paper's evaluated configurations keep the normal occupancy and
    take only the energy benefit of clock-gated lanes.
    """
    category = item.classified.category
    if category is OpCategory.CTRL:
        return 1
    if arch.scalar_fast_dispatch:
        if item.scalar_executed:
            return 1
        if item.lo_half_scalar and item.hi_half_scalar:
            return 1  # two scalar halves co-issue on one SIMT pass
    if category is OpCategory.SFU:
        return config.sfu_dispatch_cycles
    return config.alu_dispatch_cycles


def build_timing_ops(
    warp_events: list[ProcessedEvent],
    arch: ArchitectureConfig,
    config: GpuConfig,
    warp_size: int,
) -> list[TimingOp]:
    """Lower one warp's processed events to timing ops, in order."""
    ops: list[TimingOp] = []
    for item in warp_events:
        event = item.classified.event
        category = event.category

        # Extra inserted instructions (decompress moves / scalar-RF
        # spills) execute as full-width ALU-pipe moves *before* the
        # triggering instruction.
        for _ in range(item.extra_instructions):
            move_regs = (event.dst,) if event.dst is not None else ()
            ops.append(
                TimingOp(
                    category=OpCategory.ALU,
                    dst=event.dst,
                    src_regs=move_regs,
                    src_banks=tuple(_bank_of(r, config) for r in move_regs),
                    dispatch_cycles=config.alu_dispatch_cycles,
                    long_latency=False,
                    is_store=False,
                    inserted=True,
                )
            )

        if event.opcode is Opcode.BAR:
            ops.append(
                TimingOp(
                    category=OpCategory.CTRL,
                    dst=None,
                    src_regs=(),
                    src_banks=(),
                    dispatch_cycles=1,
                    long_latency=False,
                    is_store=False,
                    is_barrier=True,
                )
            )
            continue

        src_regs = []
        src_banks = []
        for access in item.rf_accesses:
            if access.is_write:
                continue
            src_regs.append(access.register)
            if access.kind.value == "scalar_rf_read":
                src_banks.append(SCALAR_RF_BANK)
            else:
                src_banks.append(_bank_of(access.register, config))

        segments: tuple[int, ...] = ()
        shared = False
        if category is OpCategory.MEM and event.addresses is not None:
            shared = event.opcode.value.endswith(".shared")
            if item.scalar_executed:
                # All lanes hit one address; a single segment suffices.
                first = int(event.addresses[0]) // 128
                segments = (first,)
            else:
                segments = coalesce_addresses(
                    event.addresses, event.active_mask, warp_size
                )

        dispatch = _dispatch_cycles(item, arch, config)
        if category is OpCategory.MEM and not shared:
            dispatch = max(dispatch, len(segments))

        ops.append(
            TimingOp(
                category=category,
                dst=event.dst,
                src_regs=tuple(src_regs),
                src_banks=tuple(src_banks),
                dispatch_cycles=dispatch,
                long_latency=event.opcode in LONG_LATENCY_ALU,
                is_store=is_store(event.opcode),
                mem_segments=segments,
                is_shared_mem=shared,
            )
        )
    return ops
