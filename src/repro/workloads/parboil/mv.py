"""``spmv`` (MV) proxy.

Signature reproduced: low full-scalar population but many partial
(3-byte / 2-byte) register values (§5.3 singles MV out, with MG, as the
benchmarks where byte-wise compression beats the scalar-only RF by
>40%).  Matrix values share only their exponent bytes; column indices
share their top bytes (locality within a row band); per-row nnz counts
differ, so the inner loop's trip-count branch diverges as short rows
finish early.  Memory-intensive by construction (gather per iteration).
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    INPUT_A,
    INPUT_B,
    INPUT_C,
    OUTPUT_A,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 1212

_VALUES = INPUT_A
_COLUMNS = INPUT_B
_ROW_LENGTHS = INPUT_C
_VECTOR = 0x50_0000


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the MV proxy at the given scale."""
    max_nnz = 2 * scale.inner_iterations
    b = KernelBuilder("spmv")
    tid = b.tid()
    row_length = b.ld_global(thread_element_addr(b, tid, _ROW_LENGTHS))
    acc = b.mov(b.fimm(0.0))
    index = b.mov(0)

    def more_elements():
        return b.setlt(index, row_length)

    with b.while_(more_elements):
        element_addr = b.imad(index, 4, thread_element_addr(b, tid, _VALUES, 4 * max_nnz))
        value = b.ld_global(element_addr)  # 2-byte-similar floats
        column = b.ld_global(
            b.imad(index, 4, thread_element_addr(b, tid, _COLUMNS, 4 * max_nnz))
        )
        x_value = b.ld_global(b.imad(column, 4, _VECTOR))  # gather
        acc = b.ffma(value, x_value, acc, dst=acc)
        index = b.iadd(index, 1, dst=index)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), acc)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    rng = np.random.default_rng(_SEED)
    # Row lengths vary within a warp -> trip-count divergence.
    lengths = rng.integers(
        max(1, (3 * max_nnz) // 4), max_nnz + 1, size=total_threads, dtype=np.uint64
    ).astype(np.uint32)
    memory = MemoryImage()
    memory.bind_array(_ROW_LENGTHS, lengths)
    memory.bind_array(
        _VALUES,
        datagen.narrow_floats(total_threads * max_nnz, 0.01, 0.009, _SEED + 1),
    )
    memory.bind_array(
        _COLUMNS,
        datagen.shared_prefix_words(
            total_threads * max_nnz, 2, _SEED + 2, base=0x00010000
        )
        % np.uint32(4096),
    )
    memory.bind_array(_VECTOR, datagen.narrow_floats(4096, 1.0, 0.3, _SEED + 3))
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="CSR-style row dot products with ragged trip counts",
    )
