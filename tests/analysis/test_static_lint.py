"""Tests for the static-analysis subsystem (diagnostics + lint passes)."""

import json

import pytest

from repro.analysis.static_ import (
    RULES,
    CfgStructurePass,
    DeadWritePass,
    Diagnostic,
    LintReport,
    PassManager,
    RegisterPressurePass,
    Severity,
    StaticScalarClass,
    Uniformity,
    analyze_uniformity,
    block_pressure,
    definite_assignment,
    lint_kernel,
    uninitialized_reads,
)
from repro.analysis.static_ import (
    diagnostic_key,
    load_baseline,
    unsuppressed,
    write_baseline,
)
from repro.analysis.static_.diagnostics import _validate_rules
from repro.analysis.static_.framework import AnalysisContext
from repro.isa import KernelBuilder
from repro.isa.instructions import Imm, Instruction, Reg
from repro.isa.kernel import BasicBlock, Branch, Exit, Kernel
from repro.isa.liveness import block_liveness
from repro.isa.opcodes import Opcode
from repro.workloads.registry import all_workloads, build_workload


def maybe_uninit_kernel():
    """The known-bad fixture: x written in one arm, read after the join."""
    b = KernelBuilder("maybe_uninit")
    tid = b.tid()
    cond = b.setlt(tid, 16)
    with b.if_(cond):
        x = b.mov(5)
    b.iadd(x, 1)
    return b.finish()


class TestRuleRegistry:
    """The public rule table is frozen: additions only, never edits."""

    EXPECTED = {
        "GS-E001": Severity.ERROR,
        "GS-E002": Severity.ERROR,
        "GS-E003": Severity.ERROR,
        "GS-W101": Severity.WARNING,
        "GS-W102": Severity.WARNING,
        "GS-W103": Severity.WARNING,
        "GS-W104": Severity.WARNING,
        "GS-I201": Severity.INFO,
        "GS-I202": Severity.INFO,
        "GS-I203": Severity.INFO,
        "GS-I204": Severity.INFO,
    }

    def test_rule_table_is_locked(self):
        assert {code: sev for code, (sev, _t) in RULES.items()} == self.EXPECTED

    def test_titles_are_nonempty(self):
        assert all(title for _sev, title in RULES.values())

    def test_validate_rejects_malformed_code(self):
        with pytest.raises(ValueError, match="malformed"):
            _validate_rules({"GSE001": (Severity.ERROR, "t")})

    def test_validate_rejects_severity_letter_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            _validate_rules({"GS-E101": (Severity.WARNING, "t")})

    def test_validate_rejects_number_reuse_across_severities(self):
        with pytest.raises(ValueError, match="already used"):
            _validate_rules(
                {
                    "GS-E001": (Severity.ERROR, "t"),
                    "GS-W001": (Severity.WARNING, "t"),
                }
            )

    def test_validate_rejects_empty_title(self):
        with pytest.raises(ValueError, match="empty title"):
            _validate_rules({"GS-E001": (Severity.ERROR, "")})


class TestBaseline:
    def _report(self):
        report = LintReport(kernel="k")
        report.extend(
            [
                Diagnostic(rule="GS-W101", kernel="k", message="dead",
                           block_id=1, inst_index=2),
                Diagnostic(rule="GS-W104", kernel="k", message="narrow r3"),
            ]
        )
        return report

    def test_round_trip_suppresses_everything(self, tmp_path):
        report = self._report()
        path = tmp_path / "baseline.json"
        assert write_baseline([report], path) == 2
        suppressed = load_baseline(path)
        assert unsuppressed(report, suppressed) == []

    def test_new_findings_stay_unsuppressed(self, tmp_path):
        report = self._report()
        path = tmp_path / "baseline.json"
        write_baseline([report], path)
        fresh = Diagnostic(rule="GS-W101", kernel="k", message="new",
                           block_id=9, inst_index=0)
        report.extend([fresh])
        remaining = unsuppressed(report, load_baseline(path))
        assert remaining == [fresh]

    def test_key_excludes_message(self):
        a = Diagnostic(rule="GS-W104", kernel="k", message="narrow, 30%")
        b = Diagnostic(rule="GS-W104", kernel="k", message="narrow, 55%")
        assert diagnostic_key(a) == diagnostic_key(b)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "suppressed": []}')
        with pytest.raises(ValueError, match="not a lint baseline"):
            load_baseline(path)

    def test_non_object_payload_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="not a lint baseline"):
            load_baseline(path)


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR >= Severity.ERROR

    def test_parse(self):
        assert Severity.parse("Warning") is Severity.WARNING
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.parse("fatal")


class TestDiagnostic:
    def test_rejects_unregistered_rule(self):
        with pytest.raises(ValueError, match="unregistered"):
            Diagnostic(rule="GS-X999", kernel="k", message="m")

    def test_rule_codes_encode_severity(self):
        for code, (severity, _title) in RULES.items():
            letter = code[3]
            assert {"E": Severity.ERROR, "W": Severity.WARNING,
                    "I": Severity.INFO}[letter] is severity

    def test_location_forms(self):
        kernel_wide = Diagnostic(rule="GS-E003", kernel="k", message="m")
        block = Diagnostic(rule="GS-W103", kernel="k", message="m", block_id=2)
        site = Diagnostic(
            rule="GS-W101", kernel="k", message="m", block_id=2, inst_index=5
        )
        assert kernel_wide.location() == "k"
        assert block.location() == "k:b2"
        assert site.location() == "k:b2:i5"

    def test_to_dict_round_trips_through_json(self):
        diag = Diagnostic(
            rule="GS-E001", kernel="k", message="m", block_id=1, inst_index=0
        )
        payload = json.loads(json.dumps(diag.to_dict()))
        assert payload["rule"] == "GS-E001"
        assert payload["severity"] == "error"
        assert payload["block"] == 1


class TestLintReport:
    def test_severity_filtering_and_counts(self):
        report = LintReport(kernel="k")
        report.extend(
            [
                Diagnostic(rule="GS-I201", kernel="k", message="info"),
                Diagnostic(rule="GS-W101", kernel="k", message="warn"),
                Diagnostic(rule="GS-E001", kernel="k", message="err"),
            ]
        )
        assert len(report.at_least(Severity.WARNING)) == 2
        assert [d.rule for d in report.errors] == ["GS-E001"]
        assert report.max_severity is Severity.ERROR
        counts = report.to_dict()["counts"]
        assert counts == {"info": 1, "warning": 1, "error": 1}

    def test_empty_report_renders_clean(self):
        report = LintReport(kernel="k")
        assert report.max_severity is None
        assert "clean" in report.render()


class TestUninitializedReads:
    def test_known_bad_fixture_yields_e002(self):
        kernel = maybe_uninit_kernel()
        findings = uninitialized_reads(kernel)
        assert any(f.rule == "GS-E002" for f in findings)
        # The finding is pinned to the post-join read site.
        [finding] = [f for f in findings if f.rule == "GS-E002"]
        assert finding.block_id is not None
        assert finding.severity is Severity.ERROR

    def test_never_written_yields_e001(self):
        kernel = Kernel(
            name="undef",
            blocks=[
                BasicBlock(
                    0,
                    [Instruction(opcode=Opcode.IADD, dst=Reg(0),
                                 srcs=(Reg(5), Reg(6)))],
                    Exit(),
                )
            ],
        )
        rules = {f.rule for f in uninitialized_reads(kernel)}
        assert rules == {"GS-E001"}

    def test_branch_condition_read_is_checked(self):
        kernel = Kernel(
            name="undef_cond",
            blocks=[
                BasicBlock(0, [], Branch(cond=Reg(3), taken=1, not_taken=1)),
                BasicBlock(1, [], Exit()),
            ],
        )
        findings = uninitialized_reads(kernel)
        assert findings and findings[0].inst_index is None

    def test_write_on_every_path_is_clean(self):
        b = KernelBuilder("both_arms")
        cond = b.setlt(b.tid(), 16)
        with b.if_(cond) as branch:
            x = b.mov(5)
            with branch.else_():
                b.mov(6, dst=x)
        b.iadd(x, 1)
        assert uninitialized_reads(b.finish()) == []

    def test_definite_assignment_intersects_paths(self):
        kernel = maybe_uninit_kernel()
        branch = kernel.blocks[0].terminator
        join = kernel.blocks[branch.taken].terminator.target
        entry = definite_assignment(kernel)
        arm_defs = {
            inst.dst.index
            for inst in kernel.blocks[branch.taken].instructions
            if inst.dst is not None
        }
        # The arm-local definition does not survive the path intersection.
        assert arm_defs and not (arm_defs & entry[join])
        # Entry-block definitions reach everything.
        entry_defs = {
            inst.dst.index
            for inst in kernel.blocks[0].instructions
            if inst.dst is not None
        }
        assert entry_defs <= entry[join]


class TestDeadWrite:
    def test_dead_write_flagged(self):
        b = KernelBuilder("dead")
        x = b.mov(1)
        b.mov(2)  # never read, not stored: dead
        b.st_global(b.mov(0x100), x)
        report = PassManager([DeadWritePass()]).run(b.finish())
        assert [d.rule for d in report.diagnostics] == ["GS-W101"]
        [diag] = report.diagnostics
        assert diag.inst_index == 1

    def test_value_live_across_blocks_not_flagged(self):
        b = KernelBuilder("live")
        x = b.mov(1)
        with b.if_(b.setlt(b.tid(), 16)):
            b.iadd(x, 1, dst=x)
        b.st_global(b.mov(0x100), x)
        report = PassManager([DeadWritePass()]).run(b.finish())
        assert report.diagnostics == []


class TestCfgStructure:
    def test_non_reconverging_branch_warns(self):
        cond_def = Instruction(opcode=Opcode.MOV, dst=Reg(0), srcs=(Imm(1),))
        kernel = Kernel(
            name="split_forever",
            blocks=[
                BasicBlock(0, [cond_def], Branch(cond=Reg(0), taken=1, not_taken=2)),
                BasicBlock(1, [], Exit()),
                BasicBlock(2, [], Exit()),
            ],
        )
        report = PassManager([CfgStructurePass()]).run(kernel)
        assert [d.rule for d in report.diagnostics] == ["GS-W102"]

    def test_degenerate_branch_is_info(self):
        cond_def = Instruction(opcode=Opcode.MOV, dst=Reg(0), srcs=(Imm(1),))
        kernel = Kernel(
            name="degenerate",
            blocks=[
                BasicBlock(0, [cond_def], Branch(cond=Reg(0), taken=1, not_taken=1)),
                BasicBlock(1, [], Exit()),
            ],
        )
        report = PassManager([CfgStructurePass()]).run(kernel)
        assert [d.rule for d in report.diagnostics] == ["GS-I203"]

    def test_structured_kernel_is_clean(self):
        b = KernelBuilder("ok")
        with b.if_(b.setlt(b.tid(), 16)):
            b.mov(1)
        report = PassManager([CfgStructurePass()]).run(b.finish())
        assert report.diagnostics == []


class TestRegisterPressure:
    def test_budget_violation_is_error(self):
        b = KernelBuilder("fat")
        regs = [b.mov(i) for i in range(70)]
        b.st_global(b.mov(0x100), regs[0])
        report = PassManager([RegisterPressurePass(max_registers=64)]).run(b.finish())
        assert [d.rule for d in report.errors] == ["GS-E003"]

    def test_pressure_below_register_count(self):
        # Sequentially dead temporaries never overlap: pressure stays
        # far below the raw register count.
        b = KernelBuilder("chain")
        x = b.mov(1)
        for _ in range(10):
            x = b.iadd(x, 1)
        b.st_global(b.mov(0x100), x)
        kernel = b.finish()
        pressure = block_pressure(kernel, block_liveness(kernel))
        assert max(pressure.values()) < kernel.num_registers


class TestUniformity:
    def test_direct_tid_read_is_divergent(self):
        b = KernelBuilder("addr")
        tid = b.tid()
        addr = b.imad(tid, 4, 0x100)
        b.st_global(addr, tid)
        result = analyze_uniformity(b.finish())
        # The MOV consuming %tid directly is a divergent site; the imad
        # reads the (affine) register, so it stays possibly-scalar.
        assert result.class_of(0, 0) is StaticScalarClass.DIVERGENT
        assert result.class_of(0, 1) is StaticScalarClass.POSSIBLY_SCALAR

    def test_uniform_chain_is_provably_scalar(self):
        b = KernelBuilder("uniform")
        base = b.ctaid()
        scaled = b.imul(base, 64)
        b.st_global(b.mov(0x100), scaled)
        result = analyze_uniformity(b.finish())
        assert result.class_of(0, 1) is StaticScalarClass.PROVABLY_SCALAR
        assert result.control_divergent_blocks == frozenset()

    def test_affine_value_is_possibly_scalar_not_divergent(self):
        b = KernelBuilder("affine")
        tid = b.tid()
        shifted = b.iadd(tid, 8)  # affine: lane + 8
        b.iadd(shifted, 1)
        result = analyze_uniformity(b.finish())
        # iadd(shifted, 1) reads an affine register (not %tid directly).
        assert result.class_of(0, 2) is StaticScalarClass.POSSIBLY_SCALAR

    def test_divergent_branch_masks_its_region(self):
        b = KernelBuilder("masked")
        tid = b.tid()
        c = b.mov(7)
        with b.if_(b.setlt(tid, 16)):
            b.iadd(c, 1)  # uniform operands, but under divergent control
        b.st_global(b.imad(tid, 4, 0x100), c)
        kernel = b.finish()
        result = analyze_uniformity(kernel)
        branch = kernel.blocks[0].terminator
        assert branch.taken in result.control_divergent_blocks
        assert (
            result.class_of(branch.taken, 0) is StaticScalarClass.POSSIBLY_SCALAR
        )

    def test_uniform_branch_region_stays_unmasked(self):
        b = KernelBuilder("uniform_branch")
        flag = b.seteq(b.ctaid(), 0)
        x = b.mov(1)
        with b.if_(flag):
            b.iadd(x, 1, dst=x)
        b.st_global(b.mov(0x100), x)
        result = analyze_uniformity(b.finish())
        assert result.control_divergent_blocks == frozenset()
        assert all(
            v is StaticScalarClass.PROVABLY_SCALAR for v in result.classes.values()
        )

    def test_load_from_uniform_address_is_uniform(self):
        b = KernelBuilder("bcast")
        value = b.ld_global(b.mov(0x100))  # one location: broadcast
        b.iadd(value, 1)
        result = analyze_uniformity(b.finish())
        assert result.class_of(0, 2) is StaticScalarClass.PROVABLY_SCALAR

    def test_join_is_monotone(self):
        assert (
            Uniformity.UNIFORM.join(Uniformity.AFFINE) is Uniformity.AFFINE
        )
        assert (
            Uniformity.DIVERGENT.join(Uniformity.UNDEF) is Uniformity.DIVERGENT
        )


class TestPipeline:
    def test_default_pipeline_over_all_workloads_is_error_free(self):
        for spec in all_workloads():
            kernel = build_workload(spec.abbr, "tiny").kernel
            report = lint_kernel(kernel)
            assert report.errors == [], (
                f"{spec.abbr}: {[d.render() for d in report.errors]}"
            )
            # Every kernel gets its two info reports.
            assert report.by_rule("GS-I201")
            assert report.by_rule("GS-I202")

    def test_context_caches_analyses(self):
        b = KernelBuilder("cache")
        b.mov(1)
        ctx = AnalysisContext(b.finish())
        assert ctx.liveness is ctx.liveness
        assert ctx.ipdom is ctx.ipdom
