"""Table 3 — encoder/decoder area, delay and power at 1.4 GHz.

Regenerated from the analytic 40 nm gate-count model in
:mod:`repro.power.circuit` and compared against the paper's synthesis
results, together with the §5.1 per-SM overhead (paper: 0.32 W / 1.6%
power and 0.16 mm^2 / 0.7% area per SM).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.tables import render_table
from repro.power.circuit import (
    PAPER_TABLE3,
    CircuitEstimate,
    compressor_estimate,
    decompressor_estimate,
    per_sm_overhead,
)


@dataclass
class Table3Data:
    decompressor: CircuitEstimate
    compressor: CircuitEstimate
    per_sm_power_w: float
    per_sm_area_mm2: float


def compute() -> Table3Data:
    """Build the model estimates."""
    power_w, area_mm2 = per_sm_overhead()
    return Table3Data(
        decompressor=decompressor_estimate(),
        compressor=compressor_estimate(),
        per_sm_power_w=power_w,
        per_sm_area_mm2=area_mm2,
    )


def render(data: Table3Data | None = None) -> str:
    """Table 3 as text, model vs paper."""
    data = data or compute()
    rows = []
    for estimate in (data.decompressor, data.compressor):
        paper = PAPER_TABLE3[estimate.name]
        rows.append(
            (
                estimate.name,
                f"{estimate.area_um2:.0f}",
                f"{paper['area_um2']:.0f}",
                f"{estimate.delay_ns:.2f}",
                f"{paper['delay_ns']:.2f}",
                f"{estimate.power_mw:.2f}",
                f"{paper['power_mw']:.2f}",
            )
        )
    body = render_table(
        [
            "block",
            "area um2",
            "(paper)",
            "delay ns",
            "(paper)",
            "power mW",
            "(paper)",
        ],
        rows,
        title="Table 3: compressor/decompressor cost, model vs paper",
    )
    footer = (
        f"\nper-SM overhead: {data.per_sm_power_w:.2f} W, "
        f"{data.per_sm_area_mm2:.3f} mm2 (paper: 0.32 W, 0.16 mm2)"
    )
    return body + footer
