"""repro — a reproduction of G-Scalar (Liu et al., HPCA 2017).

G-Scalar is a generalized scalar-execution architecture for GPUs built
on a low-cost register-value compression technique.  This package
implements the full stack the paper evaluates on:

* a PTX-like SIMT instruction set and kernel DSL (:mod:`repro.isa`),
* a trace-driven functional SIMT executor with immediate-post-dominator
  reconvergence (:mod:`repro.simt`),
* the paper's byte-wise register compressor plus the BDI baseline
  (:mod:`repro.compression`),
* the byte-rotated banked register file with BVR/EBR side arrays
  (:mod:`repro.regfile`),
* scalar-eligibility tracking for all four evaluated architectures
  (:mod:`repro.scalar`),
* a cycle-level SM timing model (:mod:`repro.timing`),
* a GPUWattch-calibrated event-energy power model (:mod:`repro.power`),
* 17 Rodinia/Parboil proxy workloads (:mod:`repro.workloads`), and
* regenerators for every figure and table in the paper's evaluation
  (:mod:`repro.experiments`; ``python -m repro --help``).
"""

from repro.config import (
    EVALUATED_ARCHITECTURES,
    ArchitectureConfig,
    GpuConfig,
    ScalarMode,
    SchedulerPolicy,
    architecture_by_name,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "EVALUATED_ARCHITECTURES",
    "ArchitectureConfig",
    "GpuConfig",
    "ReproError",
    "ScalarMode",
    "SchedulerPolicy",
    "architecture_by_name",
    "__version__",
]
