"""The full SM register file: 16 byte-rotated banks plus allocation.

Wraps :class:`~repro.regfile.bank.RegisterBank` into the structure
Table 1 describes — 1024 vector registers across 16 banks — with the
standard interleaved mapping (architectural register *r* of warp *w*
lives in bank ``(r + w) % banks``, spreading each warp's working set so
concurrent warps rarely collide on one bank).  The structural model is
exercised by tests and available to users studying bank layouts; the
trace-driven pipeline uses the cheaper arrays-activated arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.obs.telemetry import get_telemetry
from repro.regfile.bank import AccessRecord, RegisterBank
from repro.regfile.layout import BankGeometry


@dataclass(frozen=True)
class RegisterLocation:
    """Physical placement of one architectural register."""

    bank: int
    row: int


class RegisterFile:
    """A banked register file with per-warp register allocation."""

    def __init__(
        self,
        num_banks: int = 16,
        registers_per_bank: int = 64,
        registers_per_warp: int = 16,
        geometry: BankGeometry | None = None,
    ):
        if num_banks < 1 or registers_per_bank < 1:
            raise ConfigError("bank counts must be positive")
        if registers_per_warp < 1:
            raise ConfigError("registers_per_warp must be positive")
        self.num_banks = num_banks
        self.registers_per_bank = registers_per_bank
        self.registers_per_warp = registers_per_warp
        self.geometry = geometry or BankGeometry()
        self._banks = [
            RegisterBank(registers_per_bank, self.geometry) for _ in range(num_banks)
        ]
        self.reads = 0
        self.writes = 0

    @property
    def capacity_registers(self) -> int:
        """Total vector registers (1024 for the Table 1 machine)."""
        return self.num_banks * self.registers_per_bank

    @property
    def max_resident_warps(self) -> int:
        """Warps whose register segments fit simultaneously."""
        return self.capacity_registers // self.registers_per_warp

    def locate(self, warp: int, register: int) -> RegisterLocation:
        """Physical placement of warp-local architectural register."""
        if register >= self.registers_per_warp:
            raise ConfigError(
                f"register r{register} exceeds the per-warp allocation of "
                f"{self.registers_per_warp}"
            )
        if warp >= self.max_resident_warps:
            raise ConfigError(
                f"warp {warp} exceeds residency ({self.max_resident_warps} warps)"
            )
        linear = warp * self.registers_per_warp + register
        # Interleave by (register + warp) so consecutive registers of a
        # warp land in different banks and co-resident warps are offset.
        bank = (register + warp) % self.num_banks
        row = linear // self.num_banks
        if row >= self.registers_per_bank:
            raise ConfigError("register file capacity exceeded")
        return RegisterLocation(bank=bank, row=row)

    def _observe_activation(self, bank: int, op: str) -> None:
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.count("regfile_bank_activations", bank=bank, op=op)

    # ------------------------------------------------------------------
    def write(self, warp: int, register: int, values: np.ndarray) -> AccessRecord:
        """Full (compressing) write of one warp register."""
        location = self.locate(warp, register)
        self.writes += 1
        self._observe_activation(location.bank, "write")
        return self._banks[location.bank].write_compressed(location.row, values)

    def write_divergent(
        self, warp: int, register: int, values: np.ndarray, mask: np.ndarray
    ) -> AccessRecord:
        """Divergent partial write (destination must be uncompressed)."""
        location = self.locate(warp, register)
        self.writes += 1
        self._observe_activation(location.bank, "write")
        return self._banks[location.bank].write_divergent(location.row, values, mask)

    def decompress_in_place(self, warp: int, register: int) -> AccessRecord:
        """The §3.3 special move, at file scope."""
        location = self.locate(warp, register)
        self._observe_activation(location.bank, "decompress")
        return self._banks[location.bank].decompress_in_place(location.row)

    def read(self, warp: int, register: int) -> tuple[np.ndarray, AccessRecord]:
        """Read one warp register (decompressing as needed)."""
        location = self.locate(warp, register)
        self.reads += 1
        self._observe_activation(location.bank, "read")
        return self._banks[location.bank].read(location.row)

    def is_scalar(self, warp: int, register: int) -> bool:
        location = self.locate(warp, register)
        return self._banks[location.bank].is_scalar(location.row)

    def bank_conflicts(self, accesses: list[tuple[int, int]]) -> int:
        """Conflicts among concurrent (warp, register) accesses.

        Returns the number of accesses beyond the first to each bank —
        the extra cycles a single-ported bank needs.
        """
        per_bank: dict[int, int] = {}
        for warp, register in accesses:
            bank = self.locate(warp, register).bank
            per_bank[bank] = per_bank.get(bank, 0) + 1
        return sum(count - 1 for count in per_bank.values() if count > 1)
