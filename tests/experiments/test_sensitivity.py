"""Tests for the calibration-sensitivity sweep."""

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import ExperimentRunner
from repro.experiments.sensitivity import (
    SWEEPABLE,
    headline_is_robust,
    sweep_energy_parameter,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="small")


BENCHES = ("BP", "HS", "MM")


class TestSweep:
    def test_static_power_sweep_shape(self, runner):
        points = sweep_energy_parameter(
            runner, "sm_static_w", (0.5, 1.0, 2.0), benchmarks=BENCHES
        )
        assert len(points) == 3
        # More static power dilutes dynamic savings: gain shrinks.
        gains = [p.mean_gscalar_gain for p in points]
        assert gains[0] > gains[1] > gains[2]
        # But the conclusion survives a 2x mis-calibration either way.
        assert headline_is_robust(points)

    def test_rf_energy_sweep_helps_gscalar(self, runner):
        points = sweep_energy_parameter(
            runner, "rf_full_access_pj", (0.5, 1.0, 2.0), benchmarks=BENCHES
        )
        gains = [p.mean_gscalar_gain for p in points]
        # The more the RF costs, the more compression saves.
        assert gains[2] > gains[0]
        assert headline_is_robust(points)

    def test_alu_energy_sweep(self, runner):
        points = sweep_energy_parameter(
            runner, "alu_lane_pj", (0.5, 1.0, 2.0), benchmarks=BENCHES
        )
        assert headline_is_robust(points)

    def test_values_scale_correctly(self, runner):
        points = sweep_energy_parameter(
            runner, "dram_access_pj", (0.5, 1.0), benchmarks=("BP",)
        )
        assert points[1].value == pytest.approx(2 * points[0].value)
        assert points[0].parameter == "dram_access_pj"

    def test_unknown_parameter_rejected(self, runner):
        with pytest.raises(ConfigError):
            sweep_energy_parameter(runner, "magic_pj", (1.0,))

    def test_nonpositive_factor_rejected(self, runner):
        with pytest.raises(ConfigError):
            sweep_energy_parameter(runner, "alu_lane_pj", (0.0,), benchmarks=("BP",))

    def test_sweepable_list_matches_energy_params(self):
        from repro.power.energy import DEFAULT_ENERGY

        for name in SWEEPABLE:
            assert hasattr(DEFAULT_ENERGY, name)


class TestLatencySweep:
    def test_latency_sweep_shape_and_values(self, runner):
        from repro.experiments.sensitivity import (
            SWEEPABLE_LATENCIES,
            sweep_latency_parameter,
        )

        points = sweep_latency_parameter(
            runner, "alu_latency", (0.5, 1.0, 2.0), benchmarks=("BP",)
        )
        assert [p.scale_factor for p in points] == [0.5, 1.0, 2.0]
        base = runner.config.alu_latency
        assert [p.value for p in points] == [
            float(max(1, round(base * f))) for f in (0.5, 1.0, 2.0)
        ]
        for point in points:
            assert point.mean_gscalar_gain > 0
        assert set(SWEEPABLE_LATENCIES) <= {
            "alu_latency",
            "long_alu_latency",
            "sfu_latency",
            "ctrl_latency",
        }

    def test_latency_changes_move_the_result(self, runner):
        from repro.experiments.sensitivity import sweep_latency_parameter

        points = sweep_latency_parameter(
            runner, "alu_latency", (0.5, 2.0), benchmarks=("BP",)
        )
        # Different write-back latencies must actually change cycle
        # counts, hence the headline efficiencies.
        assert points[0].mean_gscalar_gain != points[1].mean_gscalar_gain

    def test_unknown_latency_rejected(self, runner):
        from repro.experiments.sensitivity import sweep_latency_parameter

        with pytest.raises(ConfigError):
            sweep_latency_parameter(runner, "alu_lane_pj")

    def test_nonpositive_latency_factor_rejected(self, runner):
        from repro.experiments.sensitivity import sweep_latency_parameter

        with pytest.raises(ConfigError):
            sweep_latency_parameter(runner, "alu_latency", (0.0,))
