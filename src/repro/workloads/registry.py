"""The 17-benchmark registry (the paper's Table 2).

Each entry is a proxy kernel written in the :mod:`repro.isa` DSL whose
dynamic behaviour — divergence shape, operand-value similarity, pipeline
mix — matches the published signature of the corresponding
Rodinia/Parboil benchmark (see each module's docstring and DESIGN.md's
substitution table).

Workloads are built at a :class:`ScaleConfig`; ``tiny`` keeps unit
tests fast, ``default`` is what the figure regenerators use.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.isa.kernel import Kernel
from repro.simt.grid import LaunchConfig
from repro.simt.memory_state import MemoryImage


@dataclass(frozen=True)
class ScaleConfig:
    """Problem-size knobs shared by all workloads.

    ``synthetic_events``, when non-zero, marks the scale as a
    *synthetic tier*: the workload's kernel is executed once at the
    scale's grid/CTA dimensions to produce a seed trace, which
    :mod:`repro.workloads.synth` then replicates (with seeded
    per-replica value/address perturbation) until the stream reaches
    at least ``synthetic_events`` events — the streaming pipeline's
    10^6+-event large tier, generated without ever executing (or
    materializing) a million-event trace.
    """

    name: str
    grid_dim: int
    cta_dim: int
    inner_iterations: int
    synthetic_events: int = 0

    def __post_init__(self) -> None:
        if self.grid_dim < 1 or self.cta_dim < 1 or self.inner_iterations < 1:
            raise WorkloadError("scale parameters must be >= 1")
        if self.synthetic_events < 0:
            raise WorkloadError("synthetic_events must be >= 0")


SCALES: dict[str, ScaleConfig] = {
    "tiny": ScaleConfig(name="tiny", grid_dim=1, cta_dim=64, inner_iterations=2),
    "small": ScaleConfig(name="small", grid_dim=4, cta_dim=128, inner_iterations=4),
    "default": ScaleConfig(name="default", grid_dim=4, cta_dim=256, inner_iterations=8),
    "large": ScaleConfig(
        name="large",
        grid_dim=8,
        cta_dim=256,
        inner_iterations=16,
        synthetic_events=1_100_000,
    ),
}


@dataclass
class BuiltWorkload:
    """A ready-to-run workload: kernel + launch + initialized memory."""

    kernel: Kernel
    launch: LaunchConfig
    memory: MemoryImage
    description: str


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry for one benchmark."""

    name: str
    abbr: str
    suite: str
    builder: Callable[[ScaleConfig], BuiltWorkload]
    memory_intensive: bool = False
    low_occupancy: bool = False


def _specs() -> list[WorkloadSpec]:
    # Imported lazily so the registry module has no import-time
    # dependency on every workload module.
    from repro.workloads.parboil import acf, cc, lbm, mg, mm, mq, mv, sad, st
    from repro.workloads.rodinia import bp, bt, hs, hw, lc, pf, sr1, sr2

    return [
        WorkloadSpec("b+tree", "BT", "Rodinia", bt.build),
        WorkloadSpec("backprop", "BP", "Rodinia", bp.build),
        WorkloadSpec("heartwall", "HW", "Rodinia", hw.build),
        WorkloadSpec("hotspot", "HS", "Rodinia", hs.build),
        WorkloadSpec("leukocyte", "LC", "Rodinia", lc.build, low_occupancy=True),
        WorkloadSpec("pathfinder", "PF", "Rodinia", pf.build),
        WorkloadSpec("srad_1", "SR1", "Rodinia", sr1.build),
        WorkloadSpec("srad_2", "SR2", "Rodinia", sr2.build),
        WorkloadSpec("cutcp", "CC", "Parboil", cc.build),
        WorkloadSpec("lbm", "LBM", "Parboil", lbm.build, memory_intensive=True),
        WorkloadSpec("mri-grid", "MG", "Parboil", mg.build, memory_intensive=True),
        WorkloadSpec("mri-q", "MQ", "Parboil", mq.build),
        WorkloadSpec("sad", "SAD", "Parboil", sad.build),
        WorkloadSpec("sgemm", "MM", "Parboil", mm.build),
        WorkloadSpec("spmv", "MV", "Parboil", mv.build, memory_intensive=True),
        WorkloadSpec("stencil", "ST", "Parboil", st.build),
        WorkloadSpec("tpacf", "ACF", "Parboil", acf.build),
    ]


_REGISTRY: dict[str, WorkloadSpec] | None = None


def all_workloads() -> list[WorkloadSpec]:
    """All 17 benchmarks in Table 2 order (Rodinia, then Parboil)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = {spec.abbr.lower(): spec for spec in _specs()}
    return list(_REGISTRY.values())


def workload_by_name(name: str) -> WorkloadSpec:
    """Look up a workload by abbreviation (``BP``) or full name."""
    wanted = name.strip().lower()
    for spec in all_workloads():
        if wanted in (spec.abbr.lower(), spec.name.lower()):
            return spec
    known = ", ".join(s.abbr for s in all_workloads())
    raise WorkloadError(f"unknown workload {name!r}; known: {known}")


def build_workload(name: str, scale: str = "default") -> BuiltWorkload:
    """Build one benchmark at a named scale."""
    if scale not in SCALES:
        raise WorkloadError(f"unknown scale {scale!r}; known: {', '.join(SCALES)}")
    return workload_by_name(name).builder(SCALES[scale])
