"""``stencil`` (ST) proxy.

Signature reproduced: a mostly convergent 7-point stencil — per-thread
neighbour loads of narrow-range floats (3-byte similar), the stencil
coefficients held in scalar registers, and only a sliver of boundary
divergence.
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    OUTPUT_A,
    PARAMS_BASE,
    load_broadcast,
    load_thread_flag,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 1616


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the ST proxy at the given scale."""
    b = KernelBuilder("stencil")
    tid = b.tid()
    c0 = load_broadcast(b, PARAMS_BASE)  # scalar coefficients
    c1 = load_broadcast(b, PARAMS_BASE + 4)
    flag = load_thread_flag(b, tid)
    at_face = b.setne(flag, 0)
    center = b.ld_global(thread_element_addr(b, tid, INPUT_A))

    with b.for_range(0, scale.inner_iterations) as _sweep:
        west = b.ld_global(b.iadd(thread_element_addr(b, tid, INPUT_A), 4))
        east = b.ld_global(b.iadd(thread_element_addr(b, tid, INPUT_A), 8))
        north = b.ld_global(b.iadd(thread_element_addr(b, tid, INPUT_A), 12))
        south = b.ld_global(b.iadd(thread_element_addr(b, tid, INPUT_A), 16))
        ring = b.fadd(b.fadd(west, east), b.fadd(north, south))
        scaled_c1 = b.fmul(c1, b.fimm(0.25))  # ALU scalar
        combined = b.fmul(ring, scaled_c1)  # vector
        weighted_center = b.fmul(center, c0)  # vector
        center = b.fadd(combined, weighted_center, dst=center)
        with b.if_(at_face):
            center = b.fmul(center, b.fimm(0.5), dst=center)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), center)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    memory.bind_array(
        INPUT_A, datagen.narrow_floats(total_threads + 4, 1.2, 0.03, _SEED)
    )
    memory.bind_array(PARAMS_BASE, np.array([0.6, 0.4], dtype=np.float32))
    memory.bind_array(
        FLAGS_BASE,
        datagen.boundary_mask_pattern(total_threads, 0.12, _SEED + 1),
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="7-point stencil over narrow-range floats",
    )
