"""Micro-benchmarks of the simulator's hot components.

These are conventional pytest-benchmark measurements (many rounds) of
the pieces that dominate a full figure regeneration: the functional
executor, the enc-bit compressor, the tracker and the SM timing loop.
"""

import numpy as np

from repro.compression.bdi import bdi_compress
from repro.compression.gscalar import common_prefix_bytes, compress
from repro.config import ArchitectureConfig, GpuConfig
from repro.scalar.tracker import classify_warp
from repro.simt.executor import run_kernel
from repro.simt.grid import LaunchConfig
from repro.simt.memory_state import MemoryImage
from repro.timing.gpu import lower_to_timing_ops, simulate_architecture
from repro.workloads.registry import SCALES, build_workload


def bench_executor_throughput(benchmark):
    """Functional execution rate (dynamic instructions/second)."""
    built = build_workload("HS", scale="tiny")

    def execute():
        # Rebuild memory each round: stores mutate it.
        fresh = build_workload("HS", scale="tiny")
        return run_kernel(fresh.kernel, fresh.launch, fresh.memory)

    trace = benchmark(execute)
    assert trace.total_instructions > 0


def bench_compressor_throughput(benchmark):
    """enc-bit computation over a batch of registers."""
    rng = np.random.default_rng(0)
    batch = rng.integers(0, 2**32, size=(512, 32), dtype=np.uint64).astype(np.uint32)

    def compress_batch():
        return sum(common_prefix_bytes(row) for row in batch)

    total = benchmark(compress_batch)
    assert total >= 0


def bench_full_compress_roundtrip(benchmark):
    values = np.uint32(0xC0400000) + np.arange(32, dtype=np.uint32)
    result = benchmark(lambda: compress(values))
    assert result.enc >= 2


def bench_bdi_throughput(benchmark):
    rng = np.random.default_rng(1)
    batch = rng.integers(0, 1000, size=(256, 32), dtype=np.uint64).astype(np.uint32)
    benchmark(lambda: [bdi_compress(row) for row in batch])


def bench_tracker_throughput(benchmark):
    """Classification rate over one warp's trace."""
    built = build_workload("SAD", scale="tiny")
    trace = run_kernel(built.kernel, built.launch, built.memory)
    warp = trace.warps[0]
    registers = built.kernel.num_registers

    result = benchmark(lambda: classify_warp(warp, registers))
    assert len(result) == len(warp.events)


def bench_sm_timing_throughput(benchmark):
    """Cycle-loop rate of the SM simulator."""
    built = build_workload("PF", scale="tiny")
    trace = run_kernel(built.kernel, built.launch, built.memory)
    from repro.scalar.architectures import process_trace

    arch = ArchitectureConfig.baseline()
    processed = process_trace(trace, arch, built.kernel.num_registers)

    result = benchmark(lambda: simulate_architecture(processed, arch))
    assert result.cycles > 0


def bench_timing_op_lowering(benchmark):
    built = build_workload("MM", scale="tiny")
    trace = run_kernel(built.kernel, built.launch, built.memory)
    from repro.scalar.architectures import process_trace

    arch = ArchitectureConfig.gscalar()
    processed = process_trace(trace, arch, built.kernel.num_registers)
    config = GpuConfig()

    ops = benchmark(lambda: lower_to_timing_ops(processed, arch, config, 32))
    assert sum(len(w) for w in ops) > 0
