"""Content fingerprints for the on-disk experiment cache.

A cached artifact is only as trustworthy as its key.  The original
cache keyed traces by ``{benchmark}_{scale}`` alone, so editing a
workload kernel (or changing the trace format) silently replayed stale
traces.  This module derives a short hex *fingerprint* from everything
a cached stage actually depends on:

* **traces** — the kernel's full static content (blocks, instructions,
  terminators), the scale parameters, the warp size and the on-disk
  trace format version;
* **classified streams** — the trace fingerprint plus the classifier
  stage version;
* **timing/power sidecars** — the trace fingerprint, the architecture
  configuration, the GPU configuration, the energy parameters and the
  stage version.

Fingerprints are embedded *inside* the cached file (not in its name),
so a stale artifact is detected at load time and transparently
re-executed and overwritten rather than replayed.

Version-bump note: the columnar trace format
(:data:`repro.simt.serialize._FORMAT_VERSION` = 3) and the batch
classifier (``STAGE_VERSION`` = 2 in :mod:`repro.experiments.runner`)
each invalidate the corresponding cached artifacts — v2 ``.npz`` traces
and v1 pickle sidecars from older checkouts fail their fingerprint or
version check on load and are transparently re-executed, never
misread.

Everything is canonicalized to JSON before hashing: dataclasses become
``{type, fields}`` maps, enums become ``{type, name}`` maps, and dict
keys are sorted, so the fingerprint is stable across processes and
insertion orders but changes whenever any field of any input changes.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

from repro.config import ArchitectureConfig, GpuConfig
from repro.isa.kernel import Kernel
from repro.power.energy import EnergyParams
from repro.workloads.registry import ScaleConfig

#: Length of the hex digest kept in cache headers.  64 bits of SHA-256
#: is far beyond collision risk for a cache with tens of entries.
DIGEST_CHARS = 16


def _canonical(obj: Any) -> Any:
    """Convert ``obj`` to a deterministic JSON-serializable structure."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "name": obj.name}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, "fields": fields}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): _canonical(value) for key, value in sorted(obj.items())}
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonical(item) for item in obj)
    # numpy scalars and anything else with .item(); last resort is repr.
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return repr(obj)


def fingerprint(*parts: Any) -> str:
    """Hash arbitrary canonicalizable parts into a short hex digest."""
    payload = json.dumps(
        [_canonical(part) for part in parts],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:DIGEST_CHARS]


def kernel_fingerprint(kernel: Kernel) -> str:
    """Fingerprint of a kernel's full static content.

    Covers every instruction, operand, terminator and the kernel name,
    so editing a workload kernel invalidates its cached traces.
    """
    blocks = [
        (
            block.block_id,
            [_canonical(inst) for inst in block.instructions],
            _canonical(block.terminator),
        )
        for block in kernel.blocks
    ]
    return fingerprint("kernel", kernel.name, kernel.num_registers, blocks)


def trace_fingerprint(kernel: Kernel, scale: ScaleConfig, warp_size: int) -> str:
    """Fingerprint identifying one functional trace.

    Includes the on-disk format version, so bumping
    :data:`repro.simt.serialize._FORMAT_VERSION` invalidates every
    cached trace at once.
    """
    from repro.simt.serialize import _FORMAT_VERSION

    return fingerprint(
        "trace", _FORMAT_VERSION, kernel_fingerprint(kernel), scale, warp_size
    )


def classified_fingerprint(
    trace_fp: str, stage_version: int, classifier: str = "batch"
) -> str:
    """Fingerprint identifying one classified event stream.

    ``classifier`` names the engine that produced the stream (``batch``
    or ``event``).  The engines are differentially tested to emit
    identical streams, but keying the sidecar on the engine keeps a
    ``--classifier=event`` differential run from silently replaying the
    other engine's cache — each engine's output is provably its own.
    """
    return fingerprint("classified", stage_version, classifier, trace_fp)


def columns_fingerprint(
    trace_fp: str, stage_version: int, classifier: str = "batch"
) -> str:
    """Fingerprint identifying one :class:`ClassifiedColumns` bank set.

    Same dependency closure as :func:`classified_fingerprint` — the
    columns are a pure function of the classified stream — but under a
    distinct label, so the columnar bank entry and the event-list
    sidecar for the same stream can never be confused for one another.
    """
    return fingerprint("ccols", stage_version, classifier, trace_fp)


def processed_fingerprint(
    trace_fp: str,
    arch: ArchitectureConfig,
    config: GpuConfig,
    stage_version: int,
    engine: str = "batch",
    classifier: str = "batch",
    analysis_version: int | None = None,
) -> str:
    """Fingerprint identifying one :class:`ProcessedColumns` bank set.

    Processed columns depend on the architecture interpretation but not
    on the SM timing engine or the energy parameters — unlike
    :func:`stage_fingerprint` for the timing/power results — so they
    get their own, narrower closure: swapping ``--sm-engine`` reuses
    the processed banks while re-simulating, exactly as it should.
    """
    parts = [
        "pcols", stage_version, trace_fp, arch, config, engine, classifier,
    ]
    if analysis_version is not None:
        parts.append(("analysis", analysis_version))
    return fingerprint(*parts)


def stage_fingerprint(
    trace_fp: str,
    arch: ArchitectureConfig,
    config: GpuConfig,
    params: EnergyParams,
    stage_version: int,
    engine: str = "batch",
    sm_engine: str = "event",
    analysis_version: int | None = None,
) -> str:
    """Fingerprint identifying one (benchmark, architecture) result pair.

    Timing depends on the architecture and GPU configuration; power
    additionally depends on the energy parameters.  Both live in one
    sidecar, so the fingerprint covers the union.  ``engine`` names the
    architecture-interpretation engine (``"batch"`` / ``"event"``) and
    ``sm_engine`` the SM timing engine (``"event"`` / ``"cycle"``) that
    produced the results — each engine pair is differentially tested to
    be bit-identical, but keying them separately guarantees one engine
    can never silently replay the other's sidecars while investigating
    a divergence.  ``analysis_version`` keys results that consume a
    static-analysis artifact (the width analysis feeding
    ``static_compress``) to that analysis's version, so tightening a
    transfer function invalidates exactly the results it can change.
    """
    parts = ["stage", stage_version, trace_fp, arch, config, params, engine, sm_engine]
    if analysis_version is not None:
        parts.append(("analysis", analysis_version))
    return fingerprint(*parts)
