"""Integration tests for the power accountant."""

import pytest

from repro.config import ArchitectureConfig
from repro.power.accounting import PowerAccountant
from repro.scalar.architectures import process_trace
from repro.simt import MemoryImage
from repro.timing.gpu import simulate_architecture

from tests.conftest import run_one_warp


def full_run(kernel, arch):
    trace = run_one_warp(kernel, MemoryImage(), cta=64)
    processed = process_trace(trace, arch, kernel.num_registers)
    timing = simulate_architecture(processed, arch)
    return PowerAccountant(arch).account(processed, timing)


class TestReports:
    def test_report_fields_consistent(self, scalar_heavy_kernel):
        report = full_run(scalar_heavy_kernel, ArchitectureConfig.baseline())
        assert report.cycles > 0
        assert report.ipc > 0
        assert report.total_power_w > report.static_w
        assert report.ipc_per_watt == pytest.approx(
            report.ipc / report.total_power_w
        )

    def test_component_fractions_sum_to_one(self, scalar_heavy_kernel):
        report = full_run(scalar_heavy_kernel, ArchitectureConfig.baseline())
        assert sum(report.breakdown.fractions().values()) == pytest.approx(1.0)

    def test_gscalar_saves_power_on_scalar_chain(self, scalar_heavy_kernel):
        baseline = full_run(scalar_heavy_kernel, ArchitectureConfig.baseline())
        gscalar = full_run(scalar_heavy_kernel, ArchitectureConfig.gscalar())
        assert gscalar.dynamic_power_w < baseline.dynamic_power_w
        assert gscalar.breakdown.exec_sfu_pj < baseline.breakdown.exec_sfu_pj
        assert gscalar.breakdown.rf_pj < baseline.breakdown.rf_pj

    def test_gscalar_pays_compression_energy(self, scalar_heavy_kernel):
        baseline = full_run(scalar_heavy_kernel, ArchitectureConfig.baseline())
        gscalar = full_run(scalar_heavy_kernel, ArchitectureConfig.gscalar())
        assert baseline.breakdown.compression_pj == 0
        assert gscalar.breakdown.compression_pj > 0

    def test_sfu_power_tracked_separately(self, scalar_heavy_kernel):
        report = full_run(scalar_heavy_kernel, ArchitectureConfig.baseline())
        assert report.sfu_power_w > 0
        assert report.rf_dynamic_power_w > 0

    def test_divergent_kernel_memory_energy(self, divergent_kernel):
        report = full_run(divergent_kernel, ArchitectureConfig.baseline())
        assert report.breakdown.memory_pj > 0  # the final stores
