"""Calibration-sensitivity bench: is the headline robust?

The power model is calibrated to GPUWattch's published proportions, so
the reproduction's credibility rests on the headline (G-Scalar beats
both the baseline and the ALU-scalar architecture) surviving large
mis-calibrations of any single energy constant.  This bench sweeps the
most influential constants across 0.5x-2x and prints the resulting mean
gains.
"""

from repro.experiments.sensitivity import headline_is_robust, sweep_energy_parameter

from conftest import run_once

PARAMETERS = ("sm_static_w", "rf_full_access_pj", "alu_lane_pj", "dram_access_pj")
FACTORS = (0.5, 1.0, 2.0)


def bench_sensitivity(benchmark, shared_runner):
    def compute():
        return {
            parameter: sweep_energy_parameter(shared_runner, parameter, FACTORS)
            for parameter in PARAMETERS
        }

    sweeps = run_once(benchmark, compute)
    print()
    for parameter, points in sweeps.items():
        series = ", ".join(
            f"{p.scale_factor}x -> {p.mean_gscalar_gain:.2f}" for p in points
        )
        print(f"  {parameter:22s}: {series}")
        assert headline_is_robust(points), parameter

    # Directional physics: static power dilutes the gain, RF energy
    # amplifies it.
    static = sweeps["sm_static_w"]
    assert static[0].mean_gscalar_gain > static[-1].mean_gscalar_gain
    rf = sweeps["rf_full_access_pj"]
    assert rf[-1].mean_gscalar_gain > rf[0].mean_gscalar_gain
