"""Scalar-eligibility classification of dynamic instructions.

Each dynamic instruction falls into exactly one :class:`ScalarClass`
bucket, matching the stacked categories of Figure 9:

* ``ALU_SCALAR`` — non-divergent, all sources scalar, ALU pipeline
  (what prior architectures [3, 5, 6] support),
* ``SFU_SCALAR`` / ``MEM_SCALAR`` — ditto on the special-function or
  memory pipeline (the paper's "all scalar" additions),
* ``HALF_SCALAR`` — non-divergent, not fully scalar, but at least one
  16-lane half has all-scalar sources (§4.3),
* ``DIVERGENT_SCALAR`` — divergent, and every source is scalar *with
  respect to the instruction's active mask* (§4.2), and
* ``NOT_ELIGIBLE`` — everything else (including all control flow).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.compression.encoding import SCALAR_PREFIX, RegisterEncoding
from repro.isa.opcodes import OpCategory


class ScalarClass(enum.Enum):
    """Figure 9 bucket of one dynamic instruction."""

    NOT_ELIGIBLE = "not_eligible"
    ALU_SCALAR = "alu_scalar"
    SFU_SCALAR = "sfu_scalar"
    MEM_SCALAR = "mem_scalar"
    HALF_SCALAR = "half_scalar"
    DIVERGENT_SCALAR = "divergent_scalar"

    @property
    def is_full_scalar(self) -> bool:
        """True for the non-divergent full-warp scalar buckets."""
        return self in (
            ScalarClass.ALU_SCALAR,
            ScalarClass.SFU_SCALAR,
            ScalarClass.MEM_SCALAR,
        )


#: Stable integer coding of :class:`ScalarClass` used by the columnar
#: pipeline (:mod:`repro.scalar.columns`).  Keyed by the value string so
#: enum-member reordering can never silently re-map stored ids.
SCALAR_CLASS_TO_ID = {
    cls: index
    for index, cls in enumerate(sorted(ScalarClass, key=lambda c: c.value))
}
ID_TO_SCALAR_CLASS = {index: cls for cls, index in SCALAR_CLASS_TO_ID.items()}


@dataclass(frozen=True, slots=True)
class SourceRead:
    """State of one source register at the moment it was read.

    ``scalar_for_read`` already accounts for the §4.2 mask check: a
    divergently-written source is scalar only when the reader's active
    mask equals the mask stored in the BVR.
    """

    register: int
    encoding: RegisterEncoding
    scalar_for_read: bool
    lo_scalar: bool
    hi_scalar: bool


def classify_source_read(
    encoding: RegisterEncoding, reader_divergent: bool, reader_mask: int
) -> SourceRead:
    """Apply §4.1/§4.2 rules to one source register."""
    if encoding.divergent:
        # D=1: values stored uncompressed; BVR holds the writer's mask.
        # enc==1111 plus an exact mask match makes it a divergent scalar
        # source; a non-divergent reader can never treat it as scalar.
        scalar = (
            reader_divergent
            and encoding.enc == SCALAR_PREFIX
            and encoding.base == reader_mask
        )
        lo_scalar = hi_scalar = False
    else:
        scalar = encoding.enc == SCALAR_PREFIX
        lo_scalar = encoding.enc_lo == SCALAR_PREFIX
        hi_scalar = encoding.enc_hi == SCALAR_PREFIX
    return SourceRead(
        register=-1,  # filled in by the tracker
        encoding=encoding,
        scalar_for_read=scalar,
        lo_scalar=lo_scalar,
        hi_scalar=hi_scalar,
    )


def classify_instruction(
    category: OpCategory,
    divergent: bool,
    sources: tuple[SourceRead, ...],
    varying_special_src: bool,
) -> tuple[ScalarClass, bool, bool]:
    """Bucket one instruction; returns (class, lo_half_ok, hi_half_ok).

    The half flags report which 16-lane halves could execute as scalar
    (meaningful for ``HALF_SCALAR``; both are True for full-scalar
    classes by construction).
    """
    if category is OpCategory.CTRL:
        return ScalarClass.NOT_ELIGIBLE, False, False
    if varying_special_src:
        # A %tid/%lane operand varies per lane: never scalar.
        return ScalarClass.NOT_ELIGIBLE, False, False

    if divergent:
        if all(s.scalar_for_read for s in sources):
            return ScalarClass.DIVERGENT_SCALAR, False, False
        return ScalarClass.NOT_ELIGIBLE, False, False

    if all(s.scalar_for_read for s in sources):
        if category is OpCategory.SFU:
            return ScalarClass.SFU_SCALAR, True, True
        if category is OpCategory.MEM:
            return ScalarClass.MEM_SCALAR, True, True
        return ScalarClass.ALU_SCALAR, True, True

    lo_ok = all(s.lo_scalar for s in sources)
    hi_ok = all(s.hi_scalar for s in sources)
    if lo_ok or hi_ok:
        return ScalarClass.HALF_SCALAR, lo_ok, hi_ok
    return ScalarClass.NOT_ELIGIBLE, False, False
