"""Differential tests: batch classification engine vs the per-event tracker.

The batch engine (:mod:`repro.scalar.batch`) must be *bit-identical* to
the original per-event state machine — same ``ClassifiedEvent`` stream,
field for field, on every workload.  These tests compare the two engines
(plus the columnar entry point) event by event, and fuzz the vectorized
compression kernels against their scalar references.
"""

import numpy as np
import pytest

from repro.compression.encoding import SCALAR_PREFIX
from repro.compression.gscalar import (
    common_prefix_bytes,
    compress,
    decompress,
    masked_prefix_bytes_batch,
    prefix_bytes_batch,
)
from repro.compression.half import compress_halves, compress_halves_batch
from repro.config import ArchitectureConfig
from repro.errors import TraceError
from repro.isa import KernelBuilder
from repro.scalar.architectures import process_trace, processed_statistics
from repro.scalar.batch import (
    CLASSIFIER_CHOICES,
    classify_columnar_batch,
    classify_trace_batch,
    classify_trace_with,
)
from repro.scalar.tracker import classify_trace, trace_statistics
from repro.simt import LaunchConfig, MemoryImage, run_kernel

from tests.conftest import run_one_warp
from repro.workloads.registry import all_workloads, build_workload


def assert_classified_equal(expected, actual):
    """Field-by-field equality of two per-warp classified streams."""
    assert len(expected) == len(actual)
    for warp_e, warp_a in zip(expected, actual):
        assert len(warp_e) == len(warp_a)
        for ev_e, ev_a in zip(warp_e, warp_a):
            assert ev_e.event.opcode is ev_a.event.opcode
            assert ev_e.event.dst == ev_a.event.dst
            assert ev_e.event.src_regs == ev_a.event.src_regs
            assert ev_e.event.active_mask == ev_a.event.active_mask
            assert ev_e.scalar_class is ev_a.scalar_class
            assert ev_e.divergent == ev_a.divergent
            assert ev_e.sources == ev_a.sources
            assert ev_e.dst_encoding == ev_a.dst_encoding
            assert ev_e.dst_encoding_before == ev_a.dst_encoding_before
            assert ev_e.needs_decompress_move == ev_a.needs_decompress_move
            assert ev_e.lo_half_scalar_exec == ev_a.lo_half_scalar_exec
            assert ev_e.hi_half_scalar_exec == ev_a.hi_half_scalar_exec


def assert_engines_agree(trace, num_registers):
    """Event, batch and columnar-batch engines produce one stream."""
    reference = classify_trace(trace, num_registers)
    batch = classify_trace_batch(trace, num_registers)
    assert_classified_equal(reference, batch)
    rebuilt, columnar_batch = classify_columnar_batch(
        trace.to_columnar(), num_registers
    )
    assert_classified_equal(reference, columnar_batch)
    assert rebuilt.total_instructions == trace.total_instructions
    assert trace_statistics(reference) == trace_statistics(batch)
    assert trace_statistics(reference) == trace_statistics(columnar_batch)


ALL_ABBRS = [spec.abbr for spec in all_workloads()]


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("abbr", ALL_ABBRS)
    def test_every_workload_tiny(self, abbr):
        built = build_workload(abbr, "tiny")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        assert_engines_agree(trace, built.kernel.num_registers)

    def test_divergent_kernel(self, divergent_kernel):
        trace = run_one_warp(divergent_kernel, MemoryImage(), cta=64)
        assert_engines_agree(trace, divergent_kernel.num_registers)

    def test_scalar_heavy_kernel(self, scalar_heavy_kernel):
        trace = run_one_warp(scalar_heavy_kernel, MemoryImage())
        assert_engines_agree(trace, scalar_heavy_kernel.num_registers)

    def test_memory_kernel(self, saxpy_kernel, simple_memory):
        trace = run_one_warp(saxpy_kernel, simple_memory)
        assert_engines_agree(trace, saxpy_kernel.num_registers)

    def test_warp_64(self, divergent_kernel):
        trace = run_one_warp(divergent_kernel, MemoryImage(), warp_size=64, cta=128)
        assert trace.warp_size == 64
        assert_engines_agree(trace, divergent_kernel.num_registers)

    def test_multi_warp_multi_cta(self, loop_kernel):
        memory = MemoryImage()
        launch = LaunchConfig(grid_dim=2, cta_dim=96)
        trace = run_kernel(loop_kernel, launch, memory)
        assert len(trace.warps) == 6
        assert_engines_agree(trace, loop_kernel.num_registers)

    def test_barrier_kernel(self):
        from tests.simt.test_barrier import cta_reduction_kernel

        kernel = cta_reduction_kernel(64)
        memory = MemoryImage()
        memory.bind_array(0x1000, np.arange(64, dtype=np.uint32))
        trace = run_kernel(kernel, LaunchConfig(grid_dim=1, cta_dim=64), memory)
        assert_engines_agree(trace, kernel.num_registers)

    def test_architecture_results_identical(self, divergent_kernel):
        trace = run_one_warp(divergent_kernel, MemoryImage(), cta=64)
        n = divergent_kernel.num_registers
        for arch in (
            ArchitectureConfig.baseline(),
            ArchitectureConfig.alu_scalar(),
            ArchitectureConfig.gscalar(),
        ):
            via_batch = process_trace(trace, arch, n, classifier="batch")
            via_event = process_trace(trace, arch, n, classifier="event")
            assert processed_statistics(via_batch) == processed_statistics(
                via_event
            )
            flags_batch = [
                (p.scalar_executed, p.lo_half_scalar, p.hi_half_scalar, p.exec_lanes)
                for warp in via_batch
                for p in warp
            ]
            flags_event = [
                (p.scalar_executed, p.lo_half_scalar, p.hi_half_scalar, p.exec_lanes)
                for warp in via_event
                for p in warp
            ]
            assert flags_batch == flags_event


class TestDispatch:
    def test_choices_cover_both_engines(self):
        assert set(CLASSIFIER_CHOICES) == {"batch", "event"}

    def test_event_engine_selected(self, scalar_heavy_kernel):
        trace = run_one_warp(scalar_heavy_kernel, MemoryImage())
        n = scalar_heavy_kernel.num_registers
        assert_classified_equal(
            classify_trace(trace, n),
            classify_trace_with(trace, n, classifier="event"),
        )

    def test_unknown_engine_rejected(self, scalar_heavy_kernel):
        trace = run_one_warp(scalar_heavy_kernel, MemoryImage())
        with pytest.raises(ValueError, match="unknown classifier"):
            classify_trace_with(trace, 8, classifier="turbo")

    def test_negative_registers_rejected(self, scalar_heavy_kernel):
        trace = run_one_warp(scalar_heavy_kernel, MemoryImage())
        with pytest.raises(TraceError):
            classify_trace_batch(trace, -1)
        with pytest.raises(TraceError):
            classify_columnar_batch(trace.to_columnar(), -1)

    def test_oversized_mask_rejected(self, scalar_heavy_kernel):
        trace = run_one_warp(scalar_heavy_kernel, MemoryImage())
        columnar = trace.to_columnar()
        columnar.masks[0] = np.uint64(1) << np.uint64(trace.warp_size)
        with pytest.raises(TraceError, match="wider than warp size"):
            classify_columnar_batch(columnar, scalar_heavy_kernel.num_registers)


def _random_matrix(rng, rows, lanes):
    """Rows spanning all prefix classes: scalar, byte-perturbed, random."""
    base = rng.integers(0, 2**32, size=rows, dtype=np.uint64).astype(np.uint32)
    values = np.repeat(base[:, None], lanes, axis=1)
    kind = rng.integers(0, 5, size=rows)
    for row in range(rows):
        if kind[row] == 4:
            continue  # scalar row
        # Perturb the low `4 - kind` bytes of random lanes.
        byte_limit = np.uint32((1 << (8 * (4 - kind[row]))) - 1)
        noise = rng.integers(0, 2**32, size=lanes, dtype=np.uint64).astype(
            np.uint32
        )
        values[row] ^= noise & byte_limit
    return values


class TestBatchCompressionKernels:
    def test_prefix_bytes_batch_matches_scalar(self):
        rng = np.random.default_rng(7)
        for lanes in (2, 16, 32, 64):
            values = _random_matrix(rng, 200, lanes)
            batch = prefix_bytes_batch(values)
            for row in range(values.shape[0]):
                assert batch[row] == common_prefix_bytes(values[row])

    def test_prefix_bytes_batch_single_lane_trivially_scalar(self):
        values = np.arange(8, dtype=np.uint32)[:, None]
        assert np.all(prefix_bytes_batch(values) == SCALAR_PREFIX)

    def test_masked_prefix_bytes_batch_matches_scalar(self):
        rng = np.random.default_rng(11)
        values = _random_matrix(rng, 200, 32)
        masks = rng.random((200, 32)) < 0.6
        batch = masked_prefix_bytes_batch(values, masks)
        for row in range(values.shape[0]):
            assert batch[row] == common_prefix_bytes(values[row], masks[row])

    def test_masked_prefix_zero_or_one_active_is_scalar(self):
        values = np.arange(64, dtype=np.uint32).reshape(2, 32)
        masks = np.zeros((2, 32), dtype=bool)
        masks[1, 5] = True
        assert np.all(
            masked_prefix_bytes_batch(values, masks) == SCALAR_PREFIX
        )

    def test_compress_decompress_roundtrip(self):
        rng = np.random.default_rng(13)
        values = _random_matrix(rng, 100, 32)
        for row in range(values.shape[0]):
            compressed = compress(values[row])
            assert compressed.enc == common_prefix_bytes(values[row])
            assert np.array_equal(decompress(compressed), values[row])

    def test_compress_halves_batch_matches_scalar(self):
        rng = np.random.default_rng(17)
        for lanes, granularity in ((32, None), (32, 8), (64, 16)):
            values = _random_matrix(rng, 150, lanes)
            batch = compress_halves_batch(values, granularity)
            for row in range(values.shape[0]):
                single = compress_halves(values[row], granularity)
                assert batch.enc_lo[row] == single.enc_lo
                assert batch.enc_hi[row] == single.enc_hi
                assert batch.base_lo[row] == single.base_lo
                assert batch.base_hi[row] == single.base_hi
                assert bool(batch.full_scalar[row]) == single.full_scalar

    def test_compress_halves_batch_chunk_disagree(self):
        # Each 16-lane chunk is internally scalar but the chunks hold
        # different values: the half must NOT be reported scalar.
        row = np.concatenate(
            [
                np.full(16, 0x11223344, dtype=np.uint32),
                np.full(16, 0x11223355, dtype=np.uint32),
                np.full(32, 0xAABBCCDD, dtype=np.uint32),
            ]
        )
        values = row[None, :]
        batch = compress_halves_batch(values, granularity=16)
        single = compress_halves(row, granularity=16)
        assert batch.enc_lo[0] == single.enc_lo < SCALAR_PREFIX
        assert batch.enc_hi[0] == single.enc_hi == SCALAR_PREFIX
        assert not bool(batch.full_scalar[0])


class TestDivergentWrites:
    def test_divergent_write_then_uniform_read(self):
        """§4.2: a divergently-written register read back under the same
        mask is still scalar for that read; both engines must agree on
        the decompress-move bookkeeping too."""
        b = KernelBuilder("div_write")
        tid = b.tid()
        c = b.mov(7)
        is_even = b.seteq(b.and_(tid, 1), 0)
        with b.if_(is_even):
            x = b.iadd(c, 1)
            b.iadd(x, 2)
        b.st_global(b.imad(tid, 4, 0x3000), c)
        kernel = b.finish()
        trace = run_one_warp(kernel, MemoryImage())
        assert_engines_agree(trace, kernel.num_registers)
