"""Tests for the shared workload code-generation patterns."""

import numpy as np

from repro.compression.gscalar import common_prefix_bytes
from repro.isa import KernelBuilder
from repro.scalar import ScalarClass, classify_warp
from repro.simt import MemoryImage
from repro.workloads import patterns

from tests.conftest import run_one_warp


class TestLoadBroadcast:
    def test_produces_mem_scalar_instruction(self):
        b = KernelBuilder("broadcast")
        value = patterns.load_broadcast(b, patterns.PARAMS_BASE)
        b.iadd(value, 1)
        kernel = b.finish()
        memory = MemoryImage()
        memory.bind_array(patterns.PARAMS_BASE, np.array([42], dtype=np.uint32))
        trace = run_one_warp(kernel, memory)
        classified = classify_warp(trace.warps[0], kernel.num_registers)
        classes = [item.scalar_class for item in classified]
        assert ScalarClass.MEM_SCALAR in classes
        # The value it produced is a scalar register for the consumer.
        assert classes[-1] is ScalarClass.ALU_SCALAR


class TestThreadElementAddr:
    def test_affine_addresses(self):
        b = KernelBuilder("affine")
        tid = b.tid()
        addr = patterns.thread_element_addr(b, tid, 0x1000)
        x = b.ld_global(addr)
        b.st_global(patterns.thread_element_addr(b, tid, 0x2000), x)
        kernel = b.finish()
        memory = MemoryImage()
        memory.bind_array(0x1000, np.arange(32, dtype=np.uint32) * 3)
        run_one_warp(kernel, memory)
        out = memory.read_array(0x2000, 32)
        assert np.array_equal(out, np.arange(32, dtype=np.uint32) * 3)

    def test_custom_stride(self):
        b = KernelBuilder("stride")
        tid = b.tid()
        addr = patterns.thread_element_addr(b, tid, 0x1000, stride=8)
        b.st_global(addr, tid)
        kernel = b.finish()
        memory = MemoryImage()
        trace = run_one_warp(kernel, memory)
        store = [e for e in trace.warps[0] if e.addresses is not None][-1]
        assert store.addresses[1] - store.addresses[0] == 8


class TestHalfParameter:
    def test_values_are_half_scalar(self):
        b = KernelBuilder("halfparam")
        param = patterns.half_parameter(b, patterns.PARAMS_BASE)
        b.st_global(patterns.thread_element_addr(b, b.tid(), 0x2000), param)
        kernel = b.finish()
        memory = MemoryImage()
        memory.bind_array(
            patterns.PARAMS_BASE, np.array([10, 20], dtype=np.uint32)
        )
        run_one_warp(kernel, memory)
        out = memory.read_array(0x2000, 32)
        assert np.all(out[:16] == 10)
        assert np.all(out[16:] == 20)
        # Each half is internally scalar; the full register is not.
        assert common_prefix_bytes(out[:16]) == 4
        assert common_prefix_bytes(out) < 4

    def test_consumers_classify_half_scalar(self):
        b = KernelBuilder("halfuse")
        param = patterns.half_parameter(b, patterns.PARAMS_BASE)
        b.iadd(param, 5)
        kernel = b.finish()
        memory = MemoryImage()
        memory.bind_array(
            patterns.PARAMS_BASE, np.array([10, 20], dtype=np.uint32)
        )
        trace = run_one_warp(kernel, memory)
        classified = classify_warp(trace.warps[0], kernel.num_registers)
        assert classified[-1].scalar_class is ScalarClass.HALF_SCALAR


class TestAddressMap:
    def test_regions_do_not_overlap(self):
        regions = [
            patterns.PARAMS_BASE,
            patterns.FLAGS_BASE,
            patterns.INPUT_A,
            patterns.INPUT_B,
            patterns.INPUT_C,
            patterns.INPUT_D,
            patterns.OUTPUT_A,
            patterns.OUTPUT_B,
        ]
        assert sorted(regions) == regions
        gaps = [b - a for a, b in zip(regions, regions[1:])]
        assert min(gaps) >= 0x7000  # room for the largest arrays
