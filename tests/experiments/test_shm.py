"""Tests for shared-memory fan-out of columnar traces."""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.experiments.shm import AdoptedSegment, ShmExporter
from repro.simt.executor import run_kernel
from repro.simt.serialize import _ARRAY_FIELDS
from repro.workloads.registry import build_workload


@pytest.fixture(scope="module")
def columnar():
    built = build_workload("HS", "tiny")
    return run_kernel(
        built.kernel, built.launch, built.memory
    ).to_columnar()


class TestExportAdopt:
    def test_round_trip_is_bit_identical(self, columnar):
        with ShmExporter() as exporter:
            handle = exporter.export_columnar(columnar, "fp-1")
            assert handle.fingerprint == "fp-1"
            assert handle.warp_size == columnar.warp_size
            assert handle.total_bytes == sum(
                int(np.ascontiguousarray(getattr(columnar, name)).nbytes)
                for name in _ARRAY_FIELDS
            )
            segment = AdoptedSegment(handle)
            try:
                adopted = segment.columnar()
                for name in _ARRAY_FIELDS:
                    assert np.array_equal(
                        getattr(adopted, name), getattr(columnar, name)
                    ), name
            finally:
                segment.detach()

    def test_adopted_views_are_read_only(self, columnar):
        with ShmExporter() as exporter:
            handle = exporter.export_columnar(columnar, "fp-1")
            segment = AdoptedSegment(handle)
            try:
                with pytest.raises(ValueError):
                    segment.columnar().opcode_ids[0] = 1
            finally:
                segment.detach()

    def test_offsets_are_page_aligned(self, columnar):
        with ShmExporter() as exporter:
            handle = exporter.export_columnar(columnar, "fp-1")
            for spec in handle.arrays:
                assert spec.offset % 4096 == 0

    def test_handle_is_picklable(self, columnar):
        with ShmExporter() as exporter:
            handle = exporter.export_columnar(columnar, "fp-1")
            rebuilt = pickle.loads(pickle.dumps(handle))
            assert rebuilt == handle

    def test_close_unlinks_segments(self, columnar):
        from multiprocessing import shared_memory

        exporter = ShmExporter()
        handle = exporter.export_columnar(columnar, "fp-1")
        exporter.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.segment)

    def test_close_is_idempotent(self, columnar):
        exporter = ShmExporter()
        exporter.export_columnar(columnar, "fp-1")
        exporter.close()
        exporter.close()


def _checksum_worker(handle, queue):
    segment = AdoptedSegment(handle)
    try:
        adopted = segment.columnar()
        queue.put(
            {
                name: int(
                    np.asarray(getattr(adopted, name)).view(np.uint8).sum()
                )
                for name in _ARRAY_FIELDS
            }
        )
    finally:
        segment.detach()


class TestCrossProcess:
    def test_workers_see_identical_bytes(self, columnar):
        expected = {
            name: int(
                np.ascontiguousarray(getattr(columnar, name))
                .view(np.uint8)
                .sum()
            )
            for name in _ARRAY_FIELDS
        }
        ctx = multiprocessing.get_context("fork")
        with ShmExporter() as exporter:
            handle = exporter.export_columnar(columnar, "fp-1")
            queue = ctx.Queue()
            workers = [
                ctx.Process(target=_checksum_worker, args=(handle, queue))
                for _ in range(2)
            ]
            for worker in workers:
                worker.start()
            payloads = [queue.get(timeout=30) for _ in workers]
            for worker in workers:
                worker.join(timeout=30)
                assert worker.exitcode == 0
        assert payloads == [expected, expected]
