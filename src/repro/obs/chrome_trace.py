"""Chrome trace-event export of recorded spans.

Produces the JSON object format consumed by Perfetto
(https://ui.perfetto.dev) and the legacy ``chrome://tracing`` viewer:
every recorded span becomes one complete (``"ph": "X"``) event with
microsecond timestamps, and metadata events name each process row after
its role (parent vs. pool worker), so a parallel run renders as one
row per worker with the per-stage spans showing true concurrency.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.telemetry import Telemetry

#: Trace-viewer sort hint: the parent process row first.
_PARENT_SORT_INDEX = 0
_WORKER_SORT_INDEX = 1


def chrome_trace(
    telemetry: Telemetry,
    parent_pid: int | None = None,
    process_names: dict[int, str] | None = None,
    thread_names: dict[tuple[int, int], str] | None = None,
) -> dict:
    """Render recorded spans as a Chrome trace-event JSON object.

    Timestamps are rebased to the earliest span so the viewer opens at
    t=0 rather than at the Unix epoch.  ``parent_pid`` (default: the
    calling process, which is where pool-worker snapshots merge) labels
    that process "parent" and every other pid "worker".

    ``process_names`` (pid -> label) overrides the role-based process
    naming, and ``thread_names`` ((pid, tid) -> label) names individual
    rows — this is how the flight recorder's per-SM/per-warp/
    per-scheduler timelines get their Perfetto labels (see
    :meth:`repro.obs.timeline.FlightRecorder.chrome_metadata`).
    """
    spans = telemetry.spans
    origin = min((span.ts_us for span in spans), default=0)
    if parent_pid is None:
        parent_pid = os.getpid()
    process_names = process_names or {}
    thread_names = thread_names or {}
    events: list[dict] = []
    seen_pids: set[int] = set()
    seen_tids: set[tuple[int, int]] = set()
    for span in spans:
        if span.pid not in seen_pids:
            seen_pids.add(span.pid)
            if span.pid in process_names:
                label = process_names[span.pid]
            else:
                role = "parent" if span.pid == parent_pid else "worker"
                label = f"repro {role} (pid {span.pid})"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
            events.append(
                {
                    "name": "process_sort_index",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": 0,
                    "args": {
                        "sort_index": _PARENT_SORT_INDEX
                        if span.pid == parent_pid
                        else _WORKER_SORT_INDEX
                    },
                }
            )
        key = (span.pid, span.tid)
        if key in thread_names and key not in seen_tids:
            seen_tids.add(key)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": {"name": thread_names[key]},
                }
            )
            events.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": {"sort_index": span.tid},
                }
            )
        events.append(
            {
                "name": span.name,
                "cat": span.cat or "default",
                "ph": "X",
                "ts": span.ts_us - origin,
                "dur": span.dur_us,
                "pid": span.pid,
                "tid": span.tid,
                "args": span.args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    telemetry: Telemetry,
    path: str | Path,
    parent_pid: int | None = None,
    process_names: dict[int, str] | None = None,
    thread_names: dict[tuple[int, int], str] | None = None,
) -> Path:
    """Write the Chrome trace JSON to ``path`` and return it."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            chrome_trace(
                telemetry,
                parent_pid=parent_pid,
                process_names=process_names,
                thread_names=thread_names,
            ),
            handle,
        )
        handle.write("\n")
    return path
