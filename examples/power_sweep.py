"""Power-efficiency sweep over all 17 benchmarks and 4 architectures.

Reproduces the Figure 11 experiment end to end at a configurable scale
and prints per-benchmark absolute numbers (IPC, watts, IPC/W) rather
than the normalized view — useful for inspecting where the energy goes.

Run with:  python examples/power_sweep.py [tiny|small|default]
"""

import sys

from repro.config import EVALUATED_ARCHITECTURES
from repro.experiments.runner import ExperimentRunner


def main():
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    runner = ExperimentRunner(scale=scale)
    arch_names = [arch.name for arch in EVALUATED_ARCHITECTURES]

    print(f"scale={scale}; columns are ipc / watts / ipc-per-watt\n")
    header = f"{'bench':6s}" + "".join(f"{name:>28s}" for name in arch_names)
    print(header)
    print("-" * len(header))

    gains = []
    for abbr in runner.benchmark_names():
        cells = []
        baseline_eff = None
        for arch in EVALUATED_ARCHITECTURES:
            report = runner.power(abbr, arch)
            if arch.name == "baseline":
                baseline_eff = report.ipc_per_watt
            cells.append(
                f"{report.ipc:5.2f}/{report.total_power_w:5.2f}/{report.ipc_per_watt:6.3f}"
            )
        gscalar_eff = runner.power(abbr, EVALUATED_ARCHITECTURES[-1]).ipc_per_watt
        gains.append(gscalar_eff / baseline_eff if baseline_eff else 0.0)
        print(f"{abbr:6s}" + "".join(f"{cell:>28s}" for cell in cells))

    print("-" * len(header))
    average_gain = sum(gains) / len(gains)
    print(f"\nG-Scalar mean IPC/W gain over baseline: {average_gain:.2f}x "
          f"(paper: 1.24x at full scale)")

    # Component breakdown for the headline benchmark.
    report = runner.power("BP", EVALUATED_ARCHITECTURES[0])
    print("\nBP baseline dynamic-energy breakdown:")
    for component, fraction in report.breakdown.fractions().items():
        print(f"  {component:12s} {100 * fraction:5.1f}%")
    report_gs = runner.power("BP", EVALUATED_ARCHITECTURES[-1])
    print(f"\nBP SFU power: {report.sfu_power_w:.2f} W -> "
          f"{report_gs.sfu_power_w:.2f} W under G-Scalar "
          f"({100 * report_gs.sfu_power_w / report.sfu_power_w:.0f}% of baseline; "
          "paper: 'less than 10%')")


if __name__ == "__main__":
    main()
