"""Shape tests for every figure regenerator (tiny scale).

These check the *qualitative* paper claims, not absolute numbers:
who wins, what's bigger than what, and that rendering works.
"""

import pytest

from repro.experiments import fig1, fig8, fig9, fig10, fig11, fig12, stalls
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale="tiny")


class TestFig1:
    def test_shape(self, runner):
        data = fig1.compute(runner)
        assert len(data.rows) == 17
        assert 0.05 < data.average_divergent < 0.6
        assert data.average_divergent_scalar <= data.average_divergent
        # The paper's headline: a large share of divergent instructions
        # is divergent-scalar.
        assert data.average_scalar_share_of_divergent > 0.3

    def test_lbm_among_most_divergent(self, runner):
        data = fig1.compute(runner)
        by_abbr = {row.abbr: row.stats.divergent_fraction for row in data.rows}
        assert by_abbr["LBM"] > by_abbr["MQ"]
        assert by_abbr["HW"] > by_abbr["MM"]

    def test_render(self, runner):
        text = fig1.render(fig1.compute(runner))
        assert "Figure 1" in text and "AVG" in text


class TestFig8:
    def test_scalar_is_largest_similarity_class(self, runner):
        data = fig8.compute(runner)
        averages = data.average_fractions()
        assert averages["scalar"] > averages["2-byte"]
        assert averages["scalar"] > 0.2
        assert abs(sum(averages.values()) - 1.0) < 1e-9

    def test_render(self, runner):
        text = fig8.render(fig8.compute(runner))
        assert "3-byte" in text


class TestFig9:
    def test_stacking_and_doubling(self, runner):
        data = fig9.compute(runner)
        assert len(data.rows) == 17
        # G-Scalar roughly doubles eligibility over ALU-scalar (paper:
        # 22% -> 40%); allow a generous band at tiny scale.
        assert data.average_total > 1.4 * data.average_alu_scalar
        for row in data.rows:
            assert row.total_eligible <= 1.0

    def test_bp_half_scalar_visible(self, runner):
        data = fig9.compute(runner)
        bp = next(r for r in data.rows if r.abbr == "BP")
        assert bp.half_scalar > 0.05

    def test_render(self, runner):
        assert "ALU scalar" in fig9.render(fig9.compute(runner))


class TestFig10:
    def test_warp64_increases_chunk_scalar(self, runner):
        data = fig10.compute(runner)
        # The paper's effect: quarter-scalar at warp 64 exceeds
        # half-scalar at warp 32 on average.
        assert data.average_warp64 > data.average_warp32

    def test_render(self, runner):
        assert "quarter" in fig10.render(fig10.compute(runner))


class TestFig11:
    @pytest.fixture(scope="class")
    def data(self):
        # Tiny launches (2 warps) cannot hide the +3-cycle latency, so
        # efficiency shape tests need enough warps for latency hiding —
        # exactly the §5.4 occupancy argument.
        return fig11.compute(ExperimentRunner(scale="small"))

    def test_gscalar_beats_baseline_and_alu_scalar(self, data):
        assert data.average_gscalar_efficiency > 1.05
        assert data.average_gscalar_efficiency > data.average_alu_scalar_efficiency

    def test_bp_is_the_star(self, data):
        bp = next(r for r in data.rows if r.abbr == "BP")
        others = [
            r.normalized_efficiency("gscalar") for r in data.rows if r.abbr != "BP"
        ]
        assert bp.normalized_efficiency("gscalar") > max(others)

    def test_ipc_penalty_small_on_average(self, data):
        assert 0.88 < data.average_gscalar_ipc < 1.02

    def test_gscalar_geq_without_divergent(self, data):
        for row in data.rows:
            assert (
                row.normalized_efficiency("gscalar")
                >= row.normalized_efficiency("gscalar_no_divergent") - 0.02
            )

    def test_render(self, data):
        assert "G-Scalar" in fig11.render(data)


class TestFig12:
    @pytest.fixture(scope="class")
    def data(self, runner):
        return fig12.compute(runner)

    def test_ordering_matches_paper(self, data):
        # ours < scalar-only < baseline on average (54% vs 37% savings).
        assert data.average("ours") < data.average("scalar_rf") < 1.0
        assert data.average("ours") < data.average("wc_bdi")

    def test_mg_mv_gap_over_scalar_rf(self, data):
        """§5.3: on MG and MV our compression beats the scalar RF by a
        wide margin because similarity is partial-byte, not scalar."""
        for abbr in ("MG", "MV"):
            row = next(r for r in data.rows if r.abbr == abbr)
            assert row.normalized["ours"] < row.normalized["scalar_rf"] - 0.1

    def test_render(self, data):
        assert "W-C" in fig12.render(data)


class TestStalls:
    @pytest.fixture(scope="class")
    def data(self, runner):
        return stalls.compute(runner)

    def test_rows_cover_suite_on_both_arches(self, data):
        assert len(data.rows) == 17 * 2
        assert data.arch_names == ("baseline", "gscalar")

    def test_fractions_tile_the_issue_slots(self, data):
        from repro.timing.sm import STALL_CAUSES

        for row in data.rows:
            total = row.issue_fraction() + sum(
                row.stall_fraction(cause) for cause in STALL_CAUSES
            )
            assert abs(total - 1.0) < 1e-9

    def test_scoreboard_dominates_at_tiny_scale(self, data):
        # Tiny problem sizes leave few warps to hide latency behind, so
        # RAW waits dwarf every structural cause.
        for arch in data.arch_names:
            assert data.average_stall_fraction(arch, "scoreboard") > 0.5
            assert data.average_stall_fraction(
                arch, "scoreboard"
            ) > data.average_stall_fraction(arch, "branch_shadow")

    def test_render(self, data):
        text = stalls.render(data)
        assert "Stall attribution" in text
        assert "AVG" in text and "bank.conf%" in text
