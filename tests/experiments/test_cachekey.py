"""Tests for cache-content fingerprints."""

import pytest

from repro.config import ArchitectureConfig, GpuConfig
from repro.experiments import cachekey
from repro.power.energy import DEFAULT_ENERGY, EnergyParams
from repro.workloads.registry import SCALES, workload_by_name


@pytest.fixture(scope="module")
def hs_kernel():
    return workload_by_name("HS").builder(SCALES["tiny"]).kernel


class TestKernelFingerprint:
    def test_stable_across_rebuilds(self, hs_kernel):
        rebuilt = workload_by_name("HS").builder(SCALES["tiny"]).kernel
        assert cachekey.kernel_fingerprint(hs_kernel) == cachekey.kernel_fingerprint(
            rebuilt
        )

    def test_different_kernels_differ(self, hs_kernel):
        other = workload_by_name("BP").builder(SCALES["tiny"]).kernel
        assert cachekey.kernel_fingerprint(hs_kernel) != cachekey.kernel_fingerprint(
            other
        )

    def test_kernel_edit_changes_fingerprint(self, hs_kernel):
        before = cachekey.kernel_fingerprint(hs_kernel)
        block = hs_kernel.blocks[0]
        removed = block.instructions.pop()
        try:
            after = cachekey.kernel_fingerprint(hs_kernel)
        finally:
            block.instructions.append(removed)
        assert before != after


class TestTraceFingerprint:
    def test_scale_and_warp_size_enter_the_key(self, hs_kernel):
        tiny32 = cachekey.trace_fingerprint(hs_kernel, SCALES["tiny"], 32)
        tiny64 = cachekey.trace_fingerprint(hs_kernel, SCALES["tiny"], 64)
        small32 = cachekey.trace_fingerprint(hs_kernel, SCALES["small"], 32)
        assert len({tiny32, tiny64, small32}) == 3

    def test_digest_shape(self, hs_kernel):
        digest = cachekey.trace_fingerprint(hs_kernel, SCALES["tiny"], 32)
        assert len(digest) == cachekey.DIGEST_CHARS
        int(digest, 16)  # hex


class TestStageFingerprint:
    def test_architecture_and_energy_enter_the_key(self):
        config = GpuConfig()
        base = cachekey.stage_fingerprint(
            "abc", ArchitectureConfig.gscalar(), config, DEFAULT_ENERGY, 1
        )
        other_arch = cachekey.stage_fingerprint(
            "abc", ArchitectureConfig.baseline(), config, DEFAULT_ENERGY, 1
        )
        other_energy = cachekey.stage_fingerprint(
            "abc",
            ArchitectureConfig.gscalar(),
            config,
            EnergyParams(alu_lane_pj=99.0),
            1,
        )
        other_version = cachekey.stage_fingerprint(
            "abc", ArchitectureConfig.gscalar(), config, DEFAULT_ENERGY, 2
        )
        assert len({base, other_arch, other_energy, other_version}) == 4

    def test_stable_across_equal_inputs(self):
        first = cachekey.stage_fingerprint(
            "abc", ArchitectureConfig.gscalar(), GpuConfig(), EnergyParams(), 1
        )
        second = cachekey.stage_fingerprint(
            "abc", ArchitectureConfig.gscalar(), GpuConfig(), EnergyParams(), 1
        )
        assert first == second
