"""Unit tests for half-register compression and FS flag semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.half import compress_halves, scalar_chunks
from repro.errors import CompressionError


def halves(lo_value, hi_value, warp_size=32):
    half = warp_size // 2
    return np.concatenate(
        [
            np.full(half, lo_value, dtype=np.uint32),
            np.full(half, hi_value, dtype=np.uint32),
        ]
    )


class TestCompressHalves:
    def test_full_scalar_sets_fs(self):
        encoding = compress_halves(halves(7, 7))
        assert encoding.full_scalar
        assert encoding.lo_is_scalar and encoding.hi_is_scalar

    def test_two_distinct_scalars(self):
        encoding = compress_halves(halves(7, 9))
        assert encoding.both_halves_scalar
        assert not encoding.full_scalar
        assert encoding.base_lo == 7
        assert encoding.base_hi == 9

    def test_paper_example_encl_1100_ench_1111(self):
        lo = np.uint32(0xAABB0000) | np.arange(16, dtype=np.uint32) * 0x101
        hi = np.full(16, 0x12345678, dtype=np.uint32)
        encoding = compress_halves(np.concatenate([lo, hi]))
        assert encoding.enc_lo == 2
        assert encoding.enc_hi == 4
        assert encoding.hi_is_scalar and not encoding.lo_is_scalar

    def test_stored_bytes(self):
        encoding = compress_halves(halves(7, 9))
        assert encoding.stored_data_bytes(32) == 0
        mixed = compress_halves(
            np.concatenate(
                [
                    np.full(16, 5, dtype=np.uint32),
                    0x1000 + np.arange(16, dtype=np.uint32),
                ]
            )
        )
        assert mixed.stored_data_bytes(32) == 16 * (4 - mixed.enc_hi)

    def test_odd_warp_size_rejected(self):
        with pytest.raises(CompressionError):
            compress_halves(np.zeros(7, dtype=np.uint32))

    def test_bad_granularity_rejected(self):
        with pytest.raises(CompressionError):
            compress_halves(np.zeros(32, dtype=np.uint32), granularity=5)

    def test_chunked_half_requires_chunk_agreement(self):
        # Warp 64, granularity 16: half "lo" is two chunks.  Each chunk
        # scalar but with different values -> the half is NOT scalar.
        lo = np.concatenate(
            [np.full(16, 1, dtype=np.uint32), np.full(16, 2, dtype=np.uint32)]
        )
        hi = np.full(32, 3, dtype=np.uint32)
        encoding = compress_halves(np.concatenate([lo, hi]), granularity=16)
        assert not encoding.lo_is_scalar
        assert encoding.hi_is_scalar


class TestScalarChunks:
    def test_chunk_flags(self):
        values = np.concatenate(
            [np.full(16, 1, dtype=np.uint32), np.arange(16, dtype=np.uint32)]
        )
        assert scalar_chunks(values, 16) == [True, False]

    def test_granularity_must_divide(self):
        with pytest.raises(CompressionError):
            scalar_chunks(np.zeros(32, dtype=np.uint32), 12)


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), min_size=32, max_size=32
    ).map(lambda xs: np.array(xs, dtype=np.uint32))
)
def test_halves_never_coarser_than_full_register(values):
    """Per-half prefixes are always >= the full-register prefix."""
    from repro.compression.gscalar import common_prefix_bytes

    encoding = compress_halves(values)
    full = common_prefix_bytes(values)
    assert encoding.enc_lo >= full
    assert encoding.enc_hi >= full


@settings(max_examples=100, deadline=None)
@given(value=st.integers(min_value=0, max_value=2**32 - 1))
def test_fs_iff_identical_scalar(value):
    encoding = compress_halves(np.full(32, value, dtype=np.uint32))
    assert encoding.full_scalar
