"""Register-file bank layouts and arrays-activated arithmetic.

A bank holds 64 vector registers in eight 64x128-bit single-port SRAM
arrays (the memory-compiler result quoted in §3.2/§5.1).  Two layouts
matter:

* **Baseline (word-interleaved)**: array ``i`` holds the 4-byte words of
  lanes ``4i .. 4i+3``.  Any full-register access activates all eight
  arrays; a divergent partial *write* activates only the arrays covering
  active lanes.

* **Byte-rotated** (Figure 3): array ``(i, h)`` holds byte ``i`` of the
  16 lanes in half ``h``.  Reading an ``n``-byte-compressed register
  activates only the ``2*(4-n)`` arrays holding non-prefix bytes, plus
  the small BVR/EBR sidecar array whose access costs 5.2% of a full
  1024-bit access (§5.1).  A divergent partial write must touch all
  eight arrays because every lane's bytes are scattered across all byte
  positions (§3.3, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Energy of one BVR/EBR/D/FS sidecar access relative to a full
#: 1024-bit vector-register access (synthesized 64x38-bit array, §5.1).
SIDECAR_ENERGY_FRACTION = 0.052


@dataclass(frozen=True)
class BankGeometry:
    """Physical shape of one register-file bank."""

    warp_size: int = 32
    arrays_per_bank: int = 8
    array_bits: int = 128

    def __post_init__(self) -> None:
        if self.warp_size * 32 != self.arrays_per_bank * self.array_bits:
            raise ConfigError(
                f"bank geometry inconsistent: {self.warp_size} lanes x 32 bits "
                f"!= {self.arrays_per_bank} arrays x {self.array_bits} bits"
            )

    @property
    def lanes_per_array(self) -> int:
        """Lanes whose byte[i] one array holds under byte rotation."""
        return self.array_bits // 8

    @property
    def arrays_per_byte_position(self) -> int:
        """Independently-activated arrays per byte position (2 for Fermi)."""
        return self.warp_size // self.lanes_per_array

    @property
    def lanes_per_word_array(self) -> int:
        """Lanes whose whole words one array holds under the baseline layout."""
        return self.array_bits // 32


class ByteRotatedLayout:
    """Arrays-activated math for the compressed register file."""

    def __init__(self, geometry: BankGeometry | None = None):
        self.geometry = geometry or BankGeometry()

    def arrays_for_full_access(self) -> int:
        """Uncompressed read or write touches every data array."""
        return self.geometry.arrays_per_bank

    def arrays_for_compressed_access(self, enc: int) -> int:
        """Data arrays for a register with an ``enc``-byte common prefix."""
        if not 0 <= enc <= 4:
            raise ConfigError(f"enc must be 0..4, got {enc}")
        return (4 - enc) * self.geometry.arrays_per_byte_position

    def arrays_for_half_compressed_access(self, enc_lo: int, enc_hi: int) -> int:
        """Data arrays with each half compressed independently."""
        for name, enc in (("enc_lo", enc_lo), ("enc_hi", enc_hi)):
            if not 0 <= enc <= 4:
                raise ConfigError(f"{name} must be 0..4, got {enc}")
        per_half = self.geometry.arrays_per_byte_position // 2
        if per_half < 1:
            raise ConfigError(
                "half-register compression needs >= 2 arrays per byte position"
            )
        return (4 - enc_lo) * per_half + (4 - enc_hi) * per_half

    def arrays_for_divergent_write(self) -> int:
        """Partial write under byte rotation touches all data arrays."""
        return self.geometry.arrays_per_bank

    def data_bytes_moved(self, enc: int) -> int:
        """Bytes crossing the array I/O for one compressed access."""
        return (4 - enc) * self.geometry.warp_size


class BaselineLayout:
    """Arrays-activated math for the unmodified word-interleaved bank."""

    def __init__(self, geometry: BankGeometry | None = None):
        self.geometry = geometry or BankGeometry()

    def arrays_for_full_access(self) -> int:
        return self.geometry.arrays_per_bank

    def arrays_for_partial_write(self, active_mask: int) -> int:
        """Arrays containing at least one active lane's word."""
        lanes_per_array = self.geometry.lanes_per_word_array
        activated = 0
        for array_index in range(self.geometry.arrays_per_bank):
            low = array_index * lanes_per_array
            group_mask = ((1 << lanes_per_array) - 1) << low
            if active_mask & group_mask:
                activated += 1
        return activated

    def data_bytes_moved(self, active_mask: int | None = None) -> int:
        """Bytes moved: all lanes for reads, active lanes for writes."""
        if active_mask is None:
            return self.geometry.warp_size * 4
        return int(active_mask).bit_count() * 4
