"""Regenerate Figure 10: chunk-scalar share versus warp size.

Paper: at 16-thread checking granularity the average rises from ~2% at
warp size 32 ("half-scalar") to ~5% at warp size 64 ("quarter-scalar").
"""

from repro.experiments import fig10

from conftest import run_once


def bench_fig10(benchmark, shared_runner):
    data = run_once(benchmark, fig10.compute, shared_runner)
    print()
    print(fig10.render(data))

    # Wider warps merge distinct scalar warps into chunk-scalar ones.
    assert data.average_warp64 > data.average_warp32
    assert data.average_warp32 < 0.10
    # The effect exists but stays a minor population, as in the paper.
    assert data.average_warp64 < 0.20

    # Some benchmark shows a significant jump (the paper calls out
    # benchmarks whose count "increases significantly").
    jumps = [r.fraction_warp64 - r.fraction_warp32 for r in data.rows]
    assert max(jumps) > 0.02
