"""Chunk-granular scalar analysis for the warp-size sweep (Figure 10).

Figure 10 keeps the checking granularity fixed at 16 threads while the
warp size grows: at warp size 64 a "half-scalar" becomes a
"quarter-scalar" instruction.  The main tracker models the two-halves
hardware; this analysis generalizes to any number of 16-lane chunks by
replaying a trace with per-chunk scalar flags.

An instruction counts as chunk-scalar when it is non-divergent, not
fully scalar, and at least one chunk has *all* of its register sources
scalar within that chunk (immediates count as scalar everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TraceError
from repro.simt.trace import KernelTrace


@dataclass(frozen=True)
class ChunkScalarStats:
    """Figure 10 numbers for one benchmark at one warp size."""

    warp_size: int
    granularity: int
    total_instructions: int
    full_scalar_instructions: int
    chunk_scalar_instructions: int

    @property
    def chunk_scalar_fraction(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.chunk_scalar_instructions / self.total_instructions


def chunk_scalar_stats(trace: KernelTrace, granularity: int = 16) -> ChunkScalarStats:
    """Replay a trace counting chunk-scalar-eligible instructions."""
    warp_size = trace.warp_size
    if warp_size % granularity != 0:
        raise TraceError(
            f"granularity {granularity} must divide warp size {warp_size}"
        )
    chunks = warp_size // granularity
    full_mask = (1 << warp_size) - 1

    total = 0
    full_scalar = 0
    chunk_scalar = 0
    for warp in trace.warps:
        # Per-register: per-chunk (is_scalar, value) state.
        state: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for event in warp.events:
            total += 1
            divergent = event.active_mask != full_mask
            if not divergent and not event.varying_special_src:
                chunk_ok = np.ones(chunks, dtype=bool)
                chunk_values_agree = True
                known = True
                reference: list[np.ndarray] = []
                for register in event.src_regs:
                    reg_state = state.get(register)
                    if reg_state is None:
                        known = False
                        break
                    flags, values = reg_state
                    chunk_ok &= flags
                    reference.append(values)
                if known:
                    if reference:
                        fully = bool(chunk_ok.all()) and all(
                            bool(np.all(v == v[0])) for v in reference
                        )
                    else:
                        fully = True  # immediate-only sources
                    if fully:
                        full_scalar += 1
                    elif chunk_ok.any():
                        chunk_scalar += 1
            if event.dst is not None and event.dst_values is not None:
                if divergent:
                    # Divergent writes invalidate chunk-scalar state
                    # (Figure 10 counts non-divergent eligibility only).
                    state[event.dst] = (
                        np.zeros(chunks, dtype=bool),
                        np.zeros(chunks, dtype=np.uint32),
                    )
                else:
                    blocks = event.dst_values.reshape(chunks, granularity)
                    flags = np.array(
                        [bool(np.all(block == block[0])) for block in blocks]
                    )
                    values = blocks[:, 0].copy()
                    state[event.dst] = (flags, values)
    return ChunkScalarStats(
        warp_size=warp_size,
        granularity=granularity,
        total_instructions=total,
        full_scalar_instructions=full_scalar,
        chunk_scalar_instructions=chunk_scalar,
    )
