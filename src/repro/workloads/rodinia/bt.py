"""``b+tree`` (BT) proxy.

Signature reproduced: tree traversal where every thread of a warp walks
the *same* node at each level (node keys are loaded through broadcast
addresses — MEM-scalar instructions), then compares its private query
key against the shared pivot.  Queries straddle the pivot, so the
comparison branch diverges; the taken/not-taken paths advance child
offsets via shared stride constants, producing divergent-scalar work.
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    INPUT_A,
    INPUT_B,
    OUTPUT_A,
    PARAMS_BASE,
    load_broadcast,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 404

#: Tree node storage: one pivot key per level.
_NODE_BASE = INPUT_B


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the BT proxy at the given scale."""
    levels = 2 * scale.inner_iterations
    b = KernelBuilder("btree")
    tid = b.tid()
    query = b.ld_global(thread_element_addr(b, tid, INPUT_A))
    stride = load_broadcast(b, PARAMS_BASE)  # child stride (scalar)
    node_addr = b.mov(_NODE_BASE)  # scalar register
    position = b.mov(0)

    with b.for_range(0, levels) as _level:
        pivot = b.ld_global(node_addr)  # MEM scalar: whole warp reads one key
        go_right = b.setge(query, pivot)
        with b.if_(go_right) as branch:
            # Right child: advance by the shared stride — divergent
            # scalar chain (stride, node_addr, pivot are all scalar
            # w.r.t. this mask).
            step = b.imul(stride, 2)
            right_bias = b.iadd(step, 4)
            position = b.iadd(position, right_bias, dst=position)
            with branch.else_():
                step_left = b.imul(stride, 1)
                position = b.iadd(position, step_left, dst=position)
        # Reconverged: next node address (scalar arithmetic).
        node_addr = b.iadd(node_addr, 8, dst=node_addr)
        # Per-thread bookkeeping keeps a vector component in the mix.
        query = b.iadd(query, 1, dst=query)

    b.st_global(thread_element_addr(b, tid, OUTPUT_A), position)
    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    # Queries clustered around the pivots so warps split on comparisons.
    memory.bind_array(
        INPUT_A, datagen.shared_prefix_words(total_threads, 3, _SEED, base=0x00001000)
    )
    memory.bind_array(
        _NODE_BASE,
        datagen.shared_prefix_words(2 * levels + 2, 3, _SEED + 1, base=0x00001000),
    )
    memory.bind_array(PARAMS_BASE, np.array([16], dtype=np.uint32))
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="B+tree traversal with broadcast node reads and pivot divergence",
    )
