"""Unit tests for trace-to-timing-op lowering."""

import numpy as np

from repro.config import ArchitectureConfig, GpuConfig
from repro.isa import KernelBuilder
from repro.isa.opcodes import OpCategory
from repro.scalar.architectures import process_trace
from repro.simt import MemoryImage
from repro.timing.ops import SCALAR_RF_BANK, build_timing_ops, coalesce_addresses

from tests.conftest import run_one_warp

CONFIG = GpuConfig()


def ops_for(kernel_builder_fn, arch):
    kernel = kernel_builder_fn()
    trace = run_one_warp(kernel, MemoryImage())
    processed = process_trace(trace, arch, kernel.num_registers)
    return build_timing_ops(processed[0], arch, CONFIG, 32)


def sfu_kernel():
    b = KernelBuilder("sfu")
    x = b.i2f(b.tid())
    b.sin(x)
    return b.finish()


def scalar_sfu_kernel():
    b = KernelBuilder("scalar_sfu")
    x = b.i2f(b.mov(3))
    b.sin(x)
    return b.finish()


class TestCoalescing:
    def test_unit_stride_coalesces_to_one_segment(self):
        addrs = (0x1000 + 4 * np.arange(32)).astype(np.uint32)
        assert len(coalesce_addresses(addrs, 0xFFFFFFFF, 32)) == 1

    def test_strided_access_spreads(self):
        addrs = (0x1000 + 128 * np.arange(32)).astype(np.uint32)
        assert len(coalesce_addresses(addrs, 0xFFFFFFFF, 32)) == 32

    def test_mask_restricts_lanes(self):
        addrs = (0x1000 + 128 * np.arange(32)).astype(np.uint32)
        assert len(coalesce_addresses(addrs, 0xF, 32)) == 4

    def test_empty_mask(self):
        addrs = np.zeros(32, dtype=np.uint32)
        assert coalesce_addresses(addrs, 0, 32) == ()


class TestDispatchCycles:
    def test_sfu_full_warp_takes_eight_cycles(self):
        ops = ops_for(sfu_kernel, ArchitectureConfig.baseline())
        sfu_ops = [o for o in ops if o.category is OpCategory.SFU]
        assert sfu_ops[0].dispatch_cycles == 8

    def test_alu_full_warp_takes_two_cycles(self):
        ops = ops_for(sfu_kernel, ArchitectureConfig.baseline())
        alu_ops = [o for o in ops if o.category is OpCategory.ALU]
        assert all(o.dispatch_cycles == 2 for o in alu_ops)

    def test_paper_config_keeps_scalar_dispatch_width(self):
        ops = ops_for(scalar_sfu_kernel, ArchitectureConfig.gscalar())
        sfu_ops = [o for o in ops if o.category is OpCategory.SFU]
        assert sfu_ops[0].dispatch_cycles == 8

    def test_fast_dispatch_ablation_shortens_scalar_sfu(self):
        arch = ArchitectureConfig.gscalar().replace(scalar_fast_dispatch=True)
        ops = ops_for(scalar_sfu_kernel, arch)
        sfu_ops = [o for o in ops if o.category is OpCategory.SFU]
        assert sfu_ops[0].dispatch_cycles == 1


class TestBankAssignment:
    def test_scalar_rf_reads_use_pseudo_bank(self):
        def chain():
            b = KernelBuilder("chain")
            c = b.mov(5)
            d = b.iadd(c, 1)
            b.iadd(d, c)
            return b.finish()

        ops = ops_for(chain, ArchitectureConfig.alu_scalar())
        banks = [bank for o in ops for bank in o.src_banks]
        assert SCALAR_RF_BANK in banks

    def test_vector_banks_modulo_16(self):
        ops = ops_for(sfu_kernel, ArchitectureConfig.baseline())
        for op in ops:
            for reg, bank in zip(op.src_regs, op.src_banks):
                assert bank == reg % CONFIG.register_file_banks


class TestInsertedOps:
    def test_decompress_move_becomes_inserted_op(self):
        def kernel():
            b = KernelBuilder("move")
            tid = b.tid()
            value = b.mov(3)
            cond = b.seteq(b.and_(tid, 1), 0)
            with b.if_(cond):
                value = b.mov(9, dst=value)
            return b.finish()

        ops = ops_for(kernel, ArchitectureConfig.gscalar())
        inserted = [o for o in ops if o.inserted]
        assert len(inserted) == 1
        assert inserted[0].category is OpCategory.ALU
