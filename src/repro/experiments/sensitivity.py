"""Calibration-sensitivity analysis of the headline result.

The power model's constants are calibrated to GPUWattch's published
proportions (see ``repro.power.energy``), not measured from silicon, so
a reproduction should demonstrate that its conclusions do not hinge on
any one constant.  :func:`sweep_energy_parameter` re-evaluates the mean
normalized G-Scalar efficiency (Figure 11's headline) while scaling one
energy parameter across a range, reusing the runner's cached traces and
timing results — only the power accounting reruns.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import ArchitectureConfig
from repro.errors import ConfigError
from repro.power.accounting import PowerAccountant
from repro.power.energy import EnergyParams

#: Parameters that make sense to sweep (scalable floats).
SWEEPABLE = (
    "alu_lane_pj",
    "mem_lane_pj",
    "fds_per_instruction_pj",
    "rf_full_access_pj",
    "crossbar_per_byte_pj",
    "l1_access_pj",
    "l2_access_pj",
    "dram_access_pj",
    "sm_static_w",
    "uncore_share_static_w",
)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sensitivity sweep."""

    parameter: str
    scale_factor: float
    value: float
    mean_gscalar_gain: float
    mean_alu_scalar_gain: float


def sweep_energy_parameter(
    runner,
    parameter: str,
    scale_factors: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0),
    benchmarks: tuple[str, ...] | None = None,
) -> list[SweepPoint]:
    """Sweep one energy parameter; return the headline gain per point.

    ``runner`` is an :class:`~repro.experiments.runner.ExperimentRunner`
    whose traces and timing results are reused across all points.
    """
    if parameter not in SWEEPABLE:
        raise ConfigError(
            f"{parameter!r} is not sweepable; choose from {', '.join(SWEEPABLE)}"
        )
    names = list(benchmarks) if benchmarks else runner.benchmark_names()
    baseline_arch = ArchitectureConfig.baseline()
    alu_arch = ArchitectureConfig.alu_scalar()
    gscalar_arch = ArchitectureConfig.gscalar()
    base_value = getattr(runner.params, parameter)

    points = []
    for factor in scale_factors:
        if factor <= 0:
            raise ConfigError(f"scale factors must be positive, got {factor}")
        params = dataclasses.replace(runner.params, **{parameter: base_value * factor})
        gscalar_gain = 0.0
        alu_gain = 0.0
        for abbr in names:
            efficiencies = {}
            for arch in (baseline_arch, alu_arch, gscalar_arch):
                accountant = PowerAccountant(arch, params, runner.config)
                report = accountant.account(
                    runner.processed(abbr, arch), runner.timing(abbr, arch)
                )
                efficiencies[arch.name] = report.ipc_per_watt
            gscalar_gain += efficiencies["gscalar"] / efficiencies["baseline"]
            alu_gain += efficiencies["alu_scalar"] / efficiencies["baseline"]
        points.append(
            SweepPoint(
                parameter=parameter,
                scale_factor=factor,
                value=base_value * factor,
                mean_gscalar_gain=gscalar_gain / len(names),
                mean_alu_scalar_gain=alu_gain / len(names),
            )
        )
    return points


#: GpuConfig timing latencies that make sense to sweep (integer cycles).
SWEEPABLE_LATENCIES = (
    "alu_latency",
    "long_alu_latency",
    "sfu_latency",
    "ctrl_latency",
)


def sweep_latency_parameter(
    runner,
    parameter: str,
    scale_factors: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0),
    benchmarks: tuple[str, ...] | None = None,
) -> list[SweepPoint]:
    """Sweep one GpuConfig write-back latency; headline gain per point.

    Unlike the energy sweeps, a latency change alters cycle counts, so
    each point re-simulates timing from the runner's cached processed
    traces (the expensive trace/classify work is still reused).
    Latencies are integers: each point uses ``max(1, round(base *
    factor))`` cycles.
    """
    import repro.timing.gpu as timing_gpu

    if parameter not in SWEEPABLE_LATENCIES:
        raise ConfigError(
            f"{parameter!r} is not a sweepable latency; choose from "
            f"{', '.join(SWEEPABLE_LATENCIES)}"
        )
    names = list(benchmarks) if benchmarks else runner.benchmark_names()
    baseline_arch = ArchitectureConfig.baseline()
    alu_arch = ArchitectureConfig.alu_scalar()
    gscalar_arch = ArchitectureConfig.gscalar()
    base_value = getattr(runner.config, parameter)

    points = []
    for factor in scale_factors:
        if factor <= 0:
            raise ConfigError(f"scale factors must be positive, got {factor}")
        value = max(1, round(base_value * factor))
        config = dataclasses.replace(runner.config, **{parameter: value})
        gscalar_gain = 0.0
        alu_gain = 0.0
        for abbr in names:
            efficiencies = {}
            for arch in (baseline_arch, alu_arch, gscalar_arch):
                processed = runner.processed(abbr, arch)
                timing = timing_gpu.simulate_architecture(
                    processed,
                    arch,
                    config,
                    warp_size=config.warp_size,
                    warps_per_cta=runner.warps_per_cta(abbr),
                )
                accountant = PowerAccountant(arch, runner.params, config)
                report = accountant.account(processed, timing)
                efficiencies[arch.name] = report.ipc_per_watt
            gscalar_gain += efficiencies["gscalar"] / efficiencies["baseline"]
            alu_gain += efficiencies["alu_scalar"] / efficiencies["baseline"]
        points.append(
            SweepPoint(
                parameter=parameter,
                scale_factor=factor,
                value=float(value),
                mean_gscalar_gain=gscalar_gain / len(names),
                mean_alu_scalar_gain=alu_gain / len(names),
            )
        )
    return points


def headline_is_robust(
    points: list[SweepPoint], floor: float = 1.0
) -> bool:
    """Does G-Scalar beat the baseline AND ALU-scalar at every point?"""
    return all(
        p.mean_gscalar_gain > floor
        and p.mean_gscalar_gain >= p.mean_alu_scalar_gain
        for p in points
    )
