"""Chunk-streaming pipeline orchestrator.

The whole-trace pipeline materializes every stage for the full event
stream: trace -> classified columns -> per-architecture processed
columns -> timing ops -> power report.  For a 10^6+-event trace the
intermediate columns dominate memory.  This module threads the same
stages chunk by chunk instead, with explicit carry state between
chunks at every layer:

* :class:`repro.scalar.batch.ClassifierCarry` — per-warp BVR/EBR
  sidecar state, the classifier's interned-read cache, and the last
  scalar class (telemetry transitions) for warps split by a chunk
  boundary;
* :class:`repro.scalar.arch_batch.ArchCarry` — the prior-work
  architecture's scalar-register-file LRU residency, per architecture;
* timing — :func:`repro.timing.ops.build_timing_ops_columns` is a pure
  per-event lowering, so each chunk's op fragments append onto their
  (global) warp's accumulated list.  Both SM engines schedule whole
  warps, so the single simulation pass at :meth:`StreamingPipeline.finish`
  is the one whole-trace barrier the stream keeps;
* power — each chunk reduces to an integer
  :class:`repro.power.accounting._PowerAggregates`, merged additively
  and evaluated once, which is exact.

Correctness contract: for any chunk size, the streamed outputs are
bit-identical to the whole-trace engines (gated by
``tests/experiments/test_streaming.py`` across all workloads and
architectures).

Memory accounting: at every chunk boundary the orchestrator records
the exact bytes of live chunk arrays into the ``bytes_in_flight``
gauge and samples the process peak RSS (:mod:`repro.obs.memory`), so
streaming runs report how bounded their working set actually was.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Callable, Iterable

import numpy as np

from repro.config import ArchitectureConfig, GpuConfig
from repro.obs.memory import record_bytes_in_flight, record_peak_rss
from repro.obs.telemetry import get_telemetry
from repro.power.accounting import PowerAccountant, _PowerAggregates
from repro.power.energy import EnergyParams
from repro.power.report import PowerReport
from repro.scalar.arch_batch import ArchCarry, process_columns_chunk
from repro.scalar.batch import ClassifierCarry, classify_columnar_chunk
from repro.scalar.columns import ClassifiedColumns, ProcessedColumns
from repro.timing.gpu import simulate_warp_ops
from repro.timing.ops import TimingOp, build_timing_ops_columns
from repro.timing.sm import TimingResult
from repro.timing.sm_event import DEFAULT_SM_ENGINE
from repro.simt.trace import TraceChunk


def _array_bytes(container: Any) -> int:
    """Exact bytes of a dataclass's live numpy arrays."""
    total = 0
    for spec in dataclass_fields(container):
        value = getattr(container, spec.name)
        if isinstance(value, np.ndarray):
            total += value.nbytes
    return total


@dataclass
class StreamOutcome:
    """Everything a streamed pipeline run produced."""

    num_events: int
    num_chunks: int
    timing: dict[str, TimingResult]  # by architecture name
    power: dict[str, PowerReport]  # by architecture name
    peak_bytes_in_flight: int


class StreamingPipeline:
    """Incremental classify -> process -> lower -> account pipeline.

    Feed :class:`~repro.simt.trace.TraceChunk` objects in stream order
    (:func:`repro.simt.trace.iter_chunks`, or a generator that never
    materializes the whole trace), then :meth:`finish` to run the SM
    timing simulation and evaluate the merged power aggregates.

    ``static_widths`` maps architecture name to the per-register
    ``enc`` table for ``static_compress`` interpretations (same value
    the whole-trace path feeds :func:`repro.scalar.arch_batch.process_columns`).
    ``collect_timing_ops=False`` skips the timing lowering entirely —
    the benchmark harness uses this to measure the bounded-memory
    classify/process/account spine on its own (the op lists are the
    one stage whose footprint grows with the trace).

    ``on_classified(chunk, ccols)`` / ``on_processed(chunk, arch, pcols)``
    observe each fragment as it is produced (the runner stores them as
    per-chunk v5 banks; tests reassemble them for exact comparison).
    """

    def __init__(
        self,
        arches: Iterable[ArchitectureConfig],
        num_registers: int,
        config: GpuConfig | None = None,
        params: EnergyParams | None = None,
        static_widths: dict[str, tuple[int, ...] | None] | None = None,
        collect_timing_ops: bool = True,
        on_classified: Callable[[TraceChunk, ClassifiedColumns], None] | None = None,
        on_processed: (
            Callable[[TraceChunk, ArchitectureConfig, ProcessedColumns], None] | None
        ) = None,
    ):
        self.arches = list(arches)
        self.num_registers = num_registers
        self.config = config or GpuConfig()
        self.params = params
        self.static_widths = static_widths or {}
        self.collect_timing_ops = collect_timing_ops
        self.on_classified = on_classified
        self.on_processed = on_processed

        self.classifier_carry = ClassifierCarry()
        self.arch_carries = {arch.name: ArchCarry() for arch in self.arches}
        self.accountants = {
            arch.name: PowerAccountant(arch, params, self.config)
            for arch in self.arches
        }
        self.aggregates: dict[str, _PowerAggregates] = {
            arch.name: _PowerAggregates() for arch in self.arches
        }
        self.warp_ops: dict[str, list[list[TimingOp]]] = {
            arch.name: [] for arch in self.arches
        }
        self.num_events = 0
        self.num_chunks = 0
        self.peak_bytes_in_flight = 0
        self._finished = False

    # ------------------------------------------------------------------
    def feed(self, chunk: TraceChunk) -> None:
        """Run one chunk through every stage, carrying state forward."""
        if self._finished:
            raise RuntimeError("StreamingPipeline.feed after finish")
        columnar = chunk.columnar
        classified = classify_columnar_chunk(
            chunk, self.num_registers, self.classifier_carry
        )
        ccols = ClassifiedColumns.from_classified(
            classified, columnar.warp_size, columnar=columnar
        )
        del classified  # fragments die here; only columns stay live
        if self.on_classified is not None:
            self.on_classified(chunk, ccols)

        live_bytes = _array_bytes(columnar) + _array_bytes(ccols)
        for arch in self.arches:
            pcols = process_columns_chunk(
                ccols,
                arch,
                self.arch_carries[arch.name],
                warp_start=chunk.warp_start,
                first_warp_continued=chunk.first_warp_continued,
                last_warp_continues=chunk.last_warp_continues,
                static_widths=self.static_widths.get(arch.name),
            )
            live_bytes += _array_bytes(pcols)
            if self.on_processed is not None:
                self.on_processed(chunk, arch, pcols)

            self.aggregates[arch.name].merge(
                self.accountants[arch.name].aggregates_from_columns(
                    pcols, warp_base=chunk.warp_start
                )
            )

            if self.collect_timing_ops:
                ops = self.warp_ops[arch.name]
                fragments = build_timing_ops_columns(
                    ccols, pcols, arch, self.config
                )
                for local, fragment in enumerate(fragments):
                    warp = chunk.warp_start + local
                    if warp < len(ops):
                        ops[warp].extend(fragment)
                    else:
                        ops.append(fragment)

        self.num_events += chunk.num_events
        self.num_chunks += 1
        if live_bytes > self.peak_bytes_in_flight:
            self.peak_bytes_in_flight = live_bytes
        telemetry = get_telemetry()
        if telemetry.enabled:
            record_bytes_in_flight(live_bytes, telemetry)
            record_peak_rss(telemetry)

    # ------------------------------------------------------------------
    def finish(
        self,
        warps_per_cta: int | None = None,
        sm_engine: str = DEFAULT_SM_ENGINE,
    ) -> StreamOutcome:
        """Run the SM simulation per architecture and evaluate power."""
        if not self.collect_timing_ops:
            raise RuntimeError(
                "finish() needs timing ops; this pipeline was built with "
                "collect_timing_ops=False (aggregates-only mode)"
            )
        self._finished = True
        timing: dict[str, TimingResult] = {}
        power: dict[str, PowerReport] = {}
        for arch in self.arches:
            result = simulate_warp_ops(
                self.warp_ops[arch.name],
                arch,
                self.config,
                warps_per_cta=warps_per_cta,
                sm_engine=sm_engine,
            )
            timing[arch.name] = result
            power[arch.name] = self.accountants[arch.name].account_aggregates(
                self.aggregates[arch.name], result
            )
        telemetry = get_telemetry()
        if telemetry.enabled:
            record_peak_rss(telemetry)
        return StreamOutcome(
            num_events=self.num_events,
            num_chunks=self.num_chunks,
            timing=timing,
            power=power,
            peak_bytes_in_flight=self.peak_bytes_in_flight,
        )


def stream_pipeline(
    chunks: Iterable[TraceChunk],
    arches: Iterable[ArchitectureConfig],
    num_registers: int,
    config: GpuConfig | None = None,
    params: EnergyParams | None = None,
    static_widths: dict[str, tuple[int, ...] | None] | None = None,
    warps_per_cta: int | None = None,
    sm_engine: str = DEFAULT_SM_ENGINE,
    on_classified: Callable[[TraceChunk, ClassifiedColumns], None] | None = None,
    on_processed: (
        Callable[[TraceChunk, ArchitectureConfig, ProcessedColumns], None] | None
    ) = None,
) -> StreamOutcome:
    """Drive a whole chunk stream end to end (the one-call form)."""
    pipeline = StreamingPipeline(
        arches,
        num_registers,
        config=config,
        params=params,
        static_widths=static_widths,
        on_classified=on_classified,
        on_processed=on_processed,
    )
    for chunk in chunks:
        pipeline.feed(chunk)
    return pipeline.finish(warps_per_cta=warps_per_cta, sm_engine=sm_engine)
