"""Unit tests for enc-bit algebra and register-encoding state."""

import pytest

from repro.compression.encoding import (
    SCALAR_PREFIX,
    RegisterEncoding,
    bits_to_enc,
    enc_to_bits,
    is_scalar_encoding,
)
from repro.errors import CompressionError


class TestPrefixCode:
    @pytest.mark.parametrize(
        "prefix,pattern",
        [(0, 0b0000), (1, 0b1000), (2, 0b1100), (3, 0b1110), (4, 0b1111)],
    )
    def test_round_trip(self, prefix, pattern):
        assert enc_to_bits(prefix) == pattern
        assert bits_to_enc(pattern) == prefix

    def test_out_of_range_prefix_rejected(self):
        with pytest.raises(CompressionError):
            enc_to_bits(5)
        with pytest.raises(CompressionError):
            enc_to_bits(-1)

    @pytest.mark.parametrize("pattern", [0b0001, 0b0110, 0b1010, 0b0111])
    def test_non_prefix_patterns_rejected(self, pattern):
        with pytest.raises(CompressionError):
            bits_to_enc(pattern)

    def test_scalar_detection(self):
        assert is_scalar_encoding(SCALAR_PREFIX)
        assert not is_scalar_encoding(3)


class TestRegisterEncoding:
    def test_stored_bytes(self):
        assert RegisterEncoding(enc=3, base=0).stored_data_bytes_per_lane == 1
        assert RegisterEncoding(enc=4, base=0).stored_data_bytes_per_lane == 0

    def test_divergent_registers_store_everything(self):
        encoding = RegisterEncoding(enc=4, base=0xFF, divergent=True)
        assert encoding.stored_data_bytes_per_lane == 4

    def test_invalid_enc_rejected(self):
        with pytest.raises(CompressionError):
            RegisterEncoding(enc=9, base=0)

    def test_mask_fits_in_base_for_wide_warps(self):
        # A 64-lane active mask must be storable in the BVR field.
        encoding = RegisterEncoding(enc=4, base=(1 << 64) - 1, divergent=True)
        assert encoding.base == (1 << 64) - 1

    def test_uncompressed_initial_state(self):
        initial = RegisterEncoding.uncompressed()
        assert initial.enc == 0
        assert not initial.divergent
        assert not initial.is_scalar
