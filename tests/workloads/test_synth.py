"""Synthetic large-tier trace generation: replica math and invariants.

The synthetic tier replicates a seed trace with seeded perturbations
that must preserve every structural property the pipeline measures —
lane-equality patterns, coalescing shape, warp structure — while the
streamed chunk generator must be partition-equivalent to materializing
the whole replicated trace.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import ArchitectureConfig, GpuConfig
from repro.experiments.streaming import stream_pipeline
from repro.simt import run_kernel
from repro.simt.trace import concat_columnar, iter_chunks
from repro.workloads.registry import SCALES, build_workload
from repro.workloads.synth import (
    iter_synthetic_chunks,
    materialize_synthetic,
    replicate_columnar,
    synthetic_num_events,
    synthetic_replicas,
)

_SEED_CACHE: dict[str, tuple] = {}


def seed_case(abbr: str = "HS"):
    if abbr not in _SEED_CACHE:
        built = build_workload(abbr, "tiny")
        trace = run_kernel(built.kernel, built.launch, built.memory)
        _SEED_CACHE[abbr] = (built, trace.to_columnar())
    return _SEED_CACHE[abbr]


def scale_with(synthetic_events: int):
    return dataclasses.replace(SCALES["tiny"], synthetic_events=synthetic_events)


class TestReplicaMath:
    def test_zero_synthetic_events_means_one_replica(self):
        _, seed = seed_case()
        assert synthetic_replicas(seed, scale_with(0)) == 1

    def test_ceiling_division(self):
        _, seed = seed_case()
        n = seed.num_events
        assert synthetic_replicas(seed, scale_with(n)) == 1
        assert synthetic_replicas(seed, scale_with(n + 1)) == 2
        assert synthetic_replicas(seed, scale_with(3 * n)) == 3

    def test_replicated_stream_reaches_floor(self):
        _, seed = seed_case()
        target = seed.num_events * 2 + 7
        replicas = synthetic_replicas(seed, scale_with(target))
        assert synthetic_num_events(seed, replicas) >= target

    def test_large_tier_floor(self):
        assert SCALES["large"].synthetic_events >= 1_000_000


class TestPerturbationInvariants:
    def test_replica_zero_is_the_seed(self):
        _, seed = seed_case()
        assert replicate_columnar(seed, 0) is seed

    def test_deterministic(self):
        _, seed = seed_case()
        a = replicate_columnar(seed, 3)
        b = replicate_columnar(seed, 3)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.warp_ids, b.warp_ids)

    def test_distinct_seed_distinct_perturbation(self):
        _, seed = seed_case()
        a = replicate_columnar(seed, 1, seed=1)
        b = replicate_columnar(seed, 1, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_lane_equality_preserved(self):
        _, seed = seed_case()
        replica = replicate_columnar(seed, 5)
        # A uniform 32-bit add keeps uniform rows uniform and divergent
        # rows divergent — the property the scalar classifier measures.
        if seed.values.shape[0]:
            seed_uniform = np.ptp(seed.values, axis=-1) == 0
            replica_uniform = np.ptp(replica.values, axis=-1) == 0
            assert np.array_equal(seed_uniform, replica_uniform)
            assert not np.array_equal(seed.values, replica.values)

    def test_coalescing_shape_preserved(self):
        _, seed = seed_case()
        replica = replicate_columnar(seed, 5)
        if seed.addresses.shape[0]:
            delta = replica.addresses.astype(np.int64) - seed.addresses.astype(
                np.int64
            )
            deltas = np.unique(delta % (1 << 32))
            assert deltas.size == 1  # one uniform shift for the replica
            assert int(deltas[0]) % 128 == 0  # 128-byte aligned
            assert int(deltas[0]) != 0

    def test_warp_ids_offset_per_replica(self):
        _, seed = seed_case()
        for replica_index in (1, 4):
            replica = replicate_columnar(seed, replica_index)
            assert np.array_equal(
                replica.warp_ids,
                seed.warp_ids + replica_index * seed.num_warps,
            )

    def test_control_structure_untouched(self):
        _, seed = seed_case()
        replica = replicate_columnar(seed, 2)
        for name in ("opcode_ids", "masks", "src_flat", "warp_lengths", "blocks"):
            assert np.array_equal(getattr(seed, name), getattr(replica, name))


class TestSyntheticChunkStream:
    REPLICAS = 3

    def test_global_indexing_is_contiguous(self):
        _, seed = seed_case()
        chunk_events = max(1, seed.num_events // 5)
        next_index = 0
        next_event = 0
        total = 0
        for chunk in iter_synthetic_chunks(seed, self.REPLICAS, chunk_events):
            assert chunk.index == next_index
            assert chunk.start_event == next_event
            next_index += 1
            next_event += chunk.num_events
            total += chunk.num_events
        assert total == synthetic_num_events(seed, self.REPLICAS)

    def test_chunk_concat_equals_materialized(self):
        _, seed = seed_case()
        # Replica-sized chunks: the streamed pieces concatenate back to
        # exactly the materialized whole trace.
        pieces = [
            chunk.columnar
            for chunk in iter_synthetic_chunks(
                seed, self.REPLICAS, seed.num_events
            )
        ]
        whole = materialize_synthetic(seed, self.REPLICAS)
        rebuilt = concat_columnar(pieces)
        assert rebuilt.num_events == whole.num_events
        for name in ("values", "addresses", "warp_ids", "opcode_ids", "src_offsets"):
            assert np.array_equal(getattr(rebuilt, name), getattr(whole, name))

    def test_streamed_equals_materialized_pipeline(self):
        built, seed = seed_case()
        arches = (ArchitectureConfig.baseline(), ArchitectureConfig.gscalar())
        config = GpuConfig()
        warps_per_cta = built.launch.warps_per_cta(seed.warp_size)
        chunk_events = max(1, seed.num_events // 3)

        # Per-replica chunk grid (the streaming path) vs a global chunk
        # grid over the materialized trace: partition invariance says
        # the outputs cannot differ.
        streamed = stream_pipeline(
            iter_synthetic_chunks(seed, self.REPLICAS, chunk_events),
            arches,
            built.kernel.num_registers,
            config=config,
            warps_per_cta=warps_per_cta,
            sm_engine="event",
        )
        whole = materialize_synthetic(seed, self.REPLICAS)
        materialized = stream_pipeline(
            iter_chunks(whole, chunk_events),
            arches,
            built.kernel.num_registers,
            config=config,
            warps_per_cta=warps_per_cta,
            sm_engine="event",
        )
        assert streamed.num_events == materialized.num_events == whole.num_events
        for arch in arches:
            assert streamed.timing[arch.name] == materialized.timing[arch.name]
            assert streamed.power[arch.name] == materialized.power[arch.name]
