"""Seeded synthetic large-tier trace generation.

The streaming pipeline's headline claim — bounded memory on 10^6+-event
traces — needs traces that big, but executing a million-event kernel in
the functional simulator (and holding its trace) is exactly the cost
streaming exists to avoid.  This module generates such streams from a
*seed trace*: the workload's kernel executed once at the tier's
grid/CTA dimensions (tens of thousands of events), replicated until
the stream reaches the tier's ``synthetic_events`` floor.

Each replica is the seed trace with a deterministic, seeded
perturbation that preserves every structural invariant:

* **values** — one uniformly-random 32-bit constant per replica is
  added (mod 2^32) to every lane.  Lane-equality patterns are
  preserved exactly (uniform warps stay uniform, divergent stay
  divergent) while byte-level magnitudes — what the value compressor
  and the scalar classifier actually measure — vary across replicas;
* **addresses** — shifted by a replica-specific 128-byte-aligned
  offset, preserving each access's coalescing shape while touching
  fresh memory segments;
* **warp ids** — offset so every replica's warps are distinct;
  opcodes, masks, source registers and control structure are untouched
  (the replica is the same kernel shape, re-run on different data).

Replica 0 is the unperturbed seed trace.  Replication is warp-aligned,
so :func:`iter_synthetic_chunks` can stream the synthetic trace one
chunk at a time — at most one replica's arrays are live at once, and
the full stream is never materialized.  :func:`materialize_synthetic`
builds the equivalent whole trace for the differential arm (and for
demonstrating that the non-streaming path cannot stay under a memory
ceiling the streaming path meets).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.simt.trace import ColumnarTrace, TraceChunk, concat_columnar, iter_chunks
from repro.workloads.registry import ScaleConfig

#: Default seed for the per-replica perturbation streams.
DEFAULT_SEED = 0x675C


def synthetic_replicas(seed_trace: ColumnarTrace, scale: ScaleConfig) -> int:
    """Replicas needed to reach ``scale.synthetic_events`` events."""
    if scale.synthetic_events <= 0:
        return 1
    base = max(1, seed_trace.num_events)
    return max(1, -(-scale.synthetic_events // base))


def synthetic_num_events(seed_trace: ColumnarTrace, replicas: int) -> int:
    """Total events of the replicated stream."""
    return seed_trace.num_events * replicas


def replicate_columnar(
    seed_trace: ColumnarTrace, replica: int, seed: int = DEFAULT_SEED
) -> ColumnarTrace:
    """Build one perturbed replica of the seed trace (replica 0 = seed)."""
    if replica == 0:
        return seed_trace
    rng = np.random.default_rng([seed, replica])
    value_delta = np.uint32(rng.integers(0, 1 << 32, dtype=np.uint32))
    # 128-byte-aligned shift keeps every access's segment count.
    addr_delta = np.uint32(
        int(rng.integers(1, 1 << 20, dtype=np.uint32)) * 128
    )
    return ColumnarTrace(
        kernel_name=seed_trace.kernel_name,
        warp_size=seed_trace.warp_size,
        warp_ids=(
            seed_trace.warp_ids + np.int32(replica * seed_trace.num_warps)
        ),
        warp_lengths=seed_trace.warp_lengths,
        opcode_ids=seed_trace.opcode_ids,
        dst=seed_trace.dst,
        masks=seed_trace.masks,
        blocks=seed_trace.blocks,
        varying=seed_trace.varying,
        scalar_nonreg=seed_trace.scalar_nonreg,
        src_offsets=seed_trace.src_offsets,
        src_flat=seed_trace.src_flat,
        values_index=seed_trace.values_index,
        values=seed_trace.values + value_delta,
        addr_index=seed_trace.addr_index,
        addresses=seed_trace.addresses + addr_delta,
    )


def iter_synthetic_chunks(
    seed_trace: ColumnarTrace,
    replicas: int,
    chunk_events: int,
    seed: int = DEFAULT_SEED,
) -> Iterator[TraceChunk]:
    """Stream the replicated trace as chunks with *global* indexing.

    Replica boundaries are warp boundaries, so each replica is chunked
    independently (its trailing chunk may be shorter than
    ``chunk_events``) and only the chunk's index / event / warp offsets
    need rebasing to the global stream.  Consumers see the same
    contract as :func:`repro.simt.trace.iter_chunks`; whether a chunk
    grid is cut globally or per replica cannot change the pipeline's
    output (streaming is partition-invariant), only its phase.
    """
    chunk_index = 0
    event_base = 0
    warp_base = 0
    for replica in range(replicas):
        columnar = replicate_columnar(seed_trace, replica, seed)
        for chunk in iter_chunks(columnar, chunk_events):
            yield TraceChunk(
                columnar=chunk.columnar,
                index=chunk_index,
                start_event=event_base + chunk.start_event,
                warp_start=warp_base + chunk.warp_start,
                first_warp_continued=chunk.first_warp_continued,
                last_warp_continues=chunk.last_warp_continues,
            )
            chunk_index += 1
        event_base += columnar.num_events
        warp_base += columnar.num_warps


def materialize_synthetic(
    seed_trace: ColumnarTrace, replicas: int, seed: int = DEFAULT_SEED
) -> ColumnarTrace:
    """The whole replicated trace as one :class:`ColumnarTrace`.

    The comparison arm only: this holds every replica's arrays at once,
    which is precisely what the streaming path avoids.
    """
    return concat_columnar(
        [
            replicate_columnar(seed_trace, replica, seed)
            for replica in range(replicas)
        ]
    )
