"""Tests for CTA barriers (``bar.sync``) in the functional executor."""

import numpy as np
import pytest

from repro.errors import ExecutionError, KernelValidationError
from repro.isa import KernelBuilder
from repro.isa.instructions import Instruction, Reg
from repro.isa.opcodes import OpCategory, Opcode, category_of
from repro.simt import LaunchConfig, MemoryImage, run_kernel


def cta_reduction_kernel(cta_size):
    """Cross-warp sum: all warps publish, then warp 0 reduces."""
    b = KernelBuilder("cta_reduce")
    tid = b.tid()
    lane_in_cta = b.iadd(b.imul(b.warp_in_cta(), 32), b.lane())
    x = b.ld_global(b.imad(tid, 4, 0x1000))
    b.st_shared(b.imul(lane_in_cta, 4), x)
    b.barrier()
    is_leader = b.seteq(lane_in_cta, 0)
    with b.if_(is_leader):
        total = b.mov(0)
        with b.for_range(0, cta_size) as index:
            value = b.ld_shared(b.imul(index, 4))
            total = b.iadd(total, value, dst=total)
        b.st_global(b.imad(b.ctaid(), 4, 0x2000), total)
    return b.finish()


class TestBarrierSemantics:
    def test_cross_warp_reduction(self):
        kernel = cta_reduction_kernel(128)
        memory = MemoryImage()
        data = np.arange(256, dtype=np.uint32)
        memory.bind_array(0x1000, data)
        run_kernel(kernel, LaunchConfig(grid_dim=2, cta_dim=128), memory)
        out = memory.read_array(0x2000, 2)
        expected = data.reshape(2, 128).sum(axis=1).astype(np.uint32)
        assert np.array_equal(out, expected)

    def test_multiple_barriers(self):
        b = KernelBuilder("two_phases")
        lane_in_cta = b.iadd(b.imul(b.warp_in_cta(), 32), b.lane())
        b.st_shared(b.imul(lane_in_cta, 4), b.iadd(lane_in_cta, 1))
        b.barrier()
        # Phase 2: read the neighbouring warp's value.
        partner = b.xor(lane_in_cta, 32)
        neighbour = b.ld_shared(b.imul(partner, 4))
        b.barrier()
        b.st_shared(b.imul(lane_in_cta, 4), neighbour)
        b.barrier()
        final = b.ld_shared(b.imul(lane_in_cta, 4))
        b.st_global(b.imad(b.tid(), 4, 0x2000), final)
        kernel = b.finish()
        memory = MemoryImage()
        run_kernel(kernel, LaunchConfig(grid_dim=1, cta_dim=64), memory)
        out = memory.read_array(0x2000, 64)
        expected = (np.arange(64) ^ 32) + 1
        assert np.array_equal(out, expected.astype(np.uint32))

    def test_barrier_under_divergence_rejected(self):
        b = KernelBuilder("bad_barrier")
        tid = b.tid()
        cond = b.setlt(tid, 16)
        with b.if_(cond):
            b.barrier()
        kernel = b.finish()
        with pytest.raises(ExecutionError, match="divergent"):
            run_kernel(kernel, LaunchConfig(1, 32), MemoryImage())

    def test_barrier_divergence_across_warps_rejected(self):
        # Warp 0 hits a barrier, warp 1 exits without one.
        b = KernelBuilder("uneven")
        is_first_warp = b.seteq(b.warp_in_cta(), 0)
        with b.if_(is_first_warp):
            b.barrier()
        kernel = b.finish()
        with pytest.raises(ExecutionError, match="barrier divergence"):
            run_kernel(kernel, LaunchConfig(1, 64), MemoryImage())

    def test_barrier_in_uniform_loop(self):
        b = KernelBuilder("loop_barrier")
        lane_in_cta = b.iadd(b.imul(b.warp_in_cta(), 32), b.lane())
        acc = b.mov(0)
        with b.for_range(0, 3):
            b.st_shared(b.imul(lane_in_cta, 4), acc)
            b.barrier()
            other = b.ld_shared(b.imul(b.xor(lane_in_cta, 32), 4))
            acc = b.iadd(acc, b.iadd(other, 1), dst=acc)
            b.barrier()
        b.st_global(b.imad(b.tid(), 4, 0x2000), acc)
        kernel = b.finish()
        memory = MemoryImage()
        run_kernel(kernel, LaunchConfig(1, 64), memory)
        out = memory.read_array(0x2000, 64)
        # acc follows 0 -> 1 -> 3 -> 7 in every lane.
        assert np.array_equal(out, np.full(64, 7, dtype=np.uint32))

    def test_barrier_trivial_for_single_warp_cta(self):
        b = KernelBuilder("solo")
        b.barrier()
        b.st_global(b.imad(b.tid(), 4, 0x2000), b.mov(1))
        kernel = b.finish()
        memory = MemoryImage()
        trace = run_kernel(kernel, LaunchConfig(1, 32), memory)
        assert memory.read_array(0x2000, 1)[0] == 1
        barriers = [e for e in trace.all_events() if e.opcode is Opcode.BAR]
        assert len(barriers) == 1


class TestBarrierMetadata:
    def test_bar_is_control_category(self):
        assert category_of(Opcode.BAR) is OpCategory.CTRL

    def test_bar_allowed_as_body_instruction(self):
        inst = Instruction(opcode=Opcode.BAR, dst=None, srcs=())
        assert inst.dst is None

    def test_other_control_still_rejected_as_body(self):
        with pytest.raises(KernelValidationError):
            Instruction(opcode=Opcode.JMP, dst=None, srcs=())

    def test_barrier_event_in_trace(self):
        kernel = cta_reduction_kernel(64)
        memory = MemoryImage()
        memory.bind_array(0x1000, np.zeros(64, dtype=np.uint32))
        trace = run_kernel(kernel, LaunchConfig(1, 64), memory)
        for warp in trace.warps:
            barrier_events = [e for e in warp if e.opcode is Opcode.BAR]
            assert len(barrier_events) == 1
            assert barrier_events[0].active_mask == 0xFFFFFFFF
