"""The banked register file: layouts, structural bank, crossbar, scalar RF."""

from repro.regfile.access import (
    ACCESS_KIND_TO_ID,
    ID_TO_ACCESS_KIND,
    WRITE_KIND_IDS,
    AccessKind,
    RegisterAccess,
)
from repro.regfile.bank import AccessRecord, RegisterBank
from repro.regfile.crossbar import (
    CrossbarTraffic,
    scalar_read_traffic,
    traffic_for_access,
)
from repro.regfile.layout import (
    SIDECAR_ENERGY_FRACTION,
    BankGeometry,
    BaselineLayout,
    ByteRotatedLayout,
)
from repro.regfile.registerfile import RegisterFile, RegisterLocation
from repro.regfile.scalar_rf import SCALAR_RF_ENERGY_FRACTION, ScalarRegisterFile

__all__ = [
    "ACCESS_KIND_TO_ID",
    "ID_TO_ACCESS_KIND",
    "SCALAR_RF_ENERGY_FRACTION",
    "SIDECAR_ENERGY_FRACTION",
    "AccessKind",
    "AccessRecord",
    "BankGeometry",
    "BaselineLayout",
    "ByteRotatedLayout",
    "CrossbarTraffic",
    "RegisterAccess",
    "RegisterFile",
    "RegisterBank",
    "RegisterLocation",
    "ScalarRegisterFile",
    "WRITE_KIND_IDS",
    "scalar_read_traffic",
    "traffic_for_access",
]
