"""Tests for the Table 3 analytic circuit model."""

import pytest

from repro.errors import ConfigError
from repro.power.circuit import (
    PAPER_TABLE3,
    compressor_estimate,
    decompressor_estimate,
    per_sm_overhead,
)


class TestAgainstPaper:
    @pytest.mark.parametrize("block", ["compressor", "decompressor"])
    def test_area_within_15_percent(self, block):
        estimate = {
            "compressor": compressor_estimate,
            "decompressor": decompressor_estimate,
        }[block]()
        paper = PAPER_TABLE3[block]["area_um2"]
        assert abs(estimate.area_um2 - paper) / paper < 0.15

    @pytest.mark.parametrize("block", ["compressor", "decompressor"])
    def test_power_within_10_percent(self, block):
        estimate = {
            "compressor": compressor_estimate,
            "decompressor": decompressor_estimate,
        }[block]()
        paper = PAPER_TABLE3[block]["power_mw"]
        assert abs(estimate.power_mw - paper) / paper < 0.10

    def test_delays_bracket_paper(self):
        comp = compressor_estimate()
        decomp = decompressor_estimate()
        assert abs(comp.delay_ns - 0.67) < 0.05
        assert abs(decomp.delay_ns - 0.35) < 0.05
        # Both close timing at 1.4 GHz (0.714 ns) as §3.1 requires.
        assert comp.delay_ns < 1 / 1.4
        assert decomp.delay_ns < 1 / 1.4

    def test_compressor_larger_than_decompressor(self):
        assert compressor_estimate().area_um2 > decompressor_estimate().area_um2


class TestPerSmOverhead:
    def test_matches_paper_budget(self):
        power_w, area_mm2 = per_sm_overhead()
        # Paper: 0.32 W and 0.16 mm^2 per SM.
        assert power_w == pytest.approx(0.32, rel=0.10)
        assert area_mm2 == pytest.approx(0.16, rel=0.10)

    def test_counts_scale(self):
        base_power, base_area = per_sm_overhead()
        double_power, double_area = per_sm_overhead(
            num_collectors=32, num_pipelines=8
        )
        assert double_power == pytest.approx(2 * base_power)
        assert double_area == pytest.approx(2 * base_area)


class TestScaling:
    def test_wider_warp_costs_more(self):
        assert compressor_estimate(64).area_um2 > compressor_estimate(32).area_um2
        assert (
            decompressor_estimate(64).power_mw > decompressor_estimate(32).power_mw
        )

    def test_invalid_warp_size_rejected(self):
        with pytest.raises(ConfigError):
            compressor_estimate(1)

    def test_energy_per_op(self):
        estimate = compressor_estimate()
        assert estimate.energy_per_op_pj == pytest.approx(
            estimate.power_mw / estimate.frequency_ghz
        )
