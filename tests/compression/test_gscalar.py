"""Unit + property tests for the byte-wise prefix compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.gscalar import (
    common_prefix_bytes,
    compress,
    compressed_bits,
    decompress,
)
from repro.errors import CompressionError


class TestCommonPrefix:
    def test_paper_example(self):
        # C04039C0, C04039C8, ..., C04039F8: bytes 3..1 identical.
        values = np.uint32(0xC04039C0) + np.arange(0, 64, 8, dtype=np.uint32)
        assert common_prefix_bytes(values) == 3

    def test_scalar(self):
        assert common_prefix_bytes(np.full(32, 0xDEADBEEF, dtype=np.uint32)) == 4

    def test_no_similarity(self):
        values = np.array([0x01000000, 0x02000000], dtype=np.uint32)
        assert common_prefix_bytes(values) == 0

    @pytest.mark.parametrize("prefix", [0, 1, 2, 3])
    def test_exact_prefix_lengths(self, prefix):
        base = 0xAABBCCDD
        low_bits = 8 * (4 - prefix)
        prefix_mask = (0xFFFFFFFF << low_bits) & 0xFFFFFFFF
        rng = np.random.default_rng(prefix)
        values = (base & prefix_mask) | rng.integers(
            0, 1 << low_bits, size=32, dtype=np.uint64
        ).astype(np.uint32)
        # Force a differing byte at the boundary position so the prefix
        # is exactly `prefix` long.
        values[0] ^= np.uint32(0x80 << (low_bits - 8))
        assert common_prefix_bytes(values) == prefix

    def test_masked_comparison_ignores_inactive_lanes(self):
        values = np.zeros(8, dtype=np.uint32)
        values[1] = 0xFFFFFFFF  # inactive junk
        mask = np.array([True, False, True, True, True, True, True, True])
        assert common_prefix_bytes(values, mask) == 4

    def test_single_active_lane_is_scalar(self):
        values = np.arange(8, dtype=np.uint32)
        mask = np.zeros(8, dtype=bool)
        mask[3] = True
        assert common_prefix_bytes(values, mask) == 4

    def test_empty_mask_is_scalar(self):
        values = np.arange(8, dtype=np.uint32)
        assert common_prefix_bytes(values, np.zeros(8, dtype=bool)) == 4


class TestCompressDecompress:
    def test_round_trip_paper_example(self):
        # 32 lanes stepping by 2 keeps byte[0] below 0x40 so bytes 3..1
        # stay C0 40 39 across the whole register, as in Figure 2.
        values = np.uint32(0xC04039C0) + np.arange(0, 64, 2, dtype=np.uint32)
        compressed = compress(values)
        assert compressed.enc == 3
        assert compressed.base == 0xC04039C0
        assert np.array_equal(decompress(compressed), values)

    def test_scalar_register_stores_no_data_bytes(self):
        compressed = compress(np.full(32, 7, dtype=np.uint32))
        assert compressed.enc == 4
        assert compressed.stored_bits == 0
        assert compressed.total_bits == 36

    def test_compression_ratio(self):
        compressed = compress(np.full(32, 7, dtype=np.uint32))
        assert compressed.compression_ratio == pytest.approx(1024 / 36)

    def test_2d_input_rejected(self):
        with pytest.raises(CompressionError):
            compress(np.zeros((4, 4), dtype=np.uint32))

    def test_compressed_bits_helper(self):
        assert compressed_bits(4, 32) == 36
        assert compressed_bits(0, 32) == 1024 + 36
        with pytest.raises(CompressionError):
            compressed_bits(7, 32)


lane_arrays = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), min_size=32, max_size=32
).map(lambda xs: np.array(xs, dtype=np.uint32))


@settings(max_examples=200, deadline=None)
@given(values=lane_arrays)
def test_round_trip_property(values):
    assert np.array_equal(decompress(compress(values)), values)


@settings(max_examples=200, deadline=None)
@given(values=lane_arrays)
def test_enc_is_sound(values):
    """The top `enc` bytes really are identical across all lanes."""
    enc = common_prefix_bytes(values)
    if enc > 0:
        shift = np.uint32(8 * (4 - enc))
        prefixes = values >> shift
        assert bool(np.all(prefixes == prefixes[0]))
    if enc < 4:
        # Maximality: the next byte differs somewhere.
        shift = np.uint32(8 * (3 - enc))
        next_bytes = (values >> shift) & np.uint32(0xFF)
        assert not bool(np.all(next_bytes == next_bytes[0]))


@settings(max_examples=100, deadline=None)
@given(
    values=lane_arrays,
    mask_bits=st.integers(min_value=1, max_value=2**32 - 1),
)
def test_masked_enc_at_least_unmasked(values, mask_bits):
    """Restricting comparison to a lane subset can only raise the prefix."""
    mask = np.array([(mask_bits >> i) & 1 == 1 for i in range(32)])
    assert common_prefix_bytes(values, mask) >= common_prefix_bytes(values)


@settings(max_examples=100, deadline=None)
@given(values=lane_arrays, offset=st.integers(min_value=0, max_value=255))
def test_shared_high_bytes_detected(values, offset):
    forced = (values & np.uint32(0xFF)) | np.uint32(0xABCD0000 + (offset << 8))
    assert common_prefix_bytes(forced) >= 3
