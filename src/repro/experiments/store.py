"""v5 zero-copy cache store: JSON manifests + page-aligned ``.npy`` banks.

The v3/v4 cache paid full (de)serialization on every *hit*: traces came
out of compressed ``.npz`` archives and the stage sidecars were
whole-object pickles, re-read independently by every ``run_matrix``
worker.  The v5 layout stores the big arrays of a cache entry as
uncompressed, page-aligned ``.npy`` files — *banks* — plus one small
JSON *manifest* per entry:

* ``<stem>.v5.json`` — the manifest: layout version, content
  fingerprint, per-array schema (name, dtype, shape, file, nbytes) and
  scalar metadata.  Staleness checks read only this file; a stale or
  foreign entry is rejected without touching a single payload byte.
* ``<stem>.<fingerprint>.v5/`` — the bank directory named after the
  manifest's fingerprint, one ``.npy`` file per array (data offset
  padded to :data:`PAGE_ALIGN`) plus one ``.pkl`` file per small
  pickled object (timing/power results).

A cache hit opens the banks with ``np.load(..., mmap_mode="r")``:
readers get read-only memory-mapped views — the OS pages data in on
demand and shares the page cache between every process mapping the same
entry, so one cache directory serves many workers without a copy.  The
read-only mapping is also the mutation-safety contract: any engine that
tries to write into a mapped column raises immediately instead of
silently corrupting the shared store (copy-on-write must be explicit).

**Write discipline** (crash-safe, reader-safe):

1. banks are written into ``<bank_dir>.<pid>.tmp/`` and atomically
   ``os.rename``-ed into place — a concurrent writer of the *same*
   fingerprint loses the rename race and discards its temp dir (the
   content is identical by construction);
2. the manifest is written to a temp file and ``os.replace``-d last.

Because bank directories are fingerprint-named, replacing an entry
writes *new* banks and swaps only the manifest: a reader still holding
memory-mapped views of the old banks keeps reading consistent data
(POSIX keeps unlinked-but-mapped pages alive).  Old banks become
orphans and are reclaimed by :func:`sweep_orphans`, which also clears
``*.tmp`` debris left by crashed writers; both sweeps are age-gated so
a live writer's work-in-progress is never swept from under it.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
import pickle
import re
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

#: Version of the manifest/bank cache layout.  Entries written by a
#: different layout are ignored (the reader falls back to the legacy
#: v3 ``.npz`` / v4 pickle forms, then to recomputation).
CACHE_LAYOUT_VERSION = 5

#: Bank ``.npy`` headers are padded so array data starts on a page
#: boundary — mmap-friendly and safe for direct I/O.
PAGE_ALIGN = 4096

#: Manifest filename suffix: ``<stem>.v5.json``.
MANIFEST_SUFFIX = ".v5.json"

#: Bank directory suffix: ``<stem>.<fingerprint>.v5``.
BANK_SUFFIX = ".v5"

#: Default age (seconds) below which :func:`sweep_orphans` leaves
#: ``*.tmp`` files and unreferenced bank directories alone — they may
#: belong to a writer that is mid-flight right now.
TMP_SWEEP_AGE_SECONDS = 600.0

_BANK_DIR_RE = re.compile(r"^(?P<stem>.+)\.(?P<fp>[0-9a-f]{8,64})\.v5$")


class StoreError(Exception):
    """Internal signal for a damaged v5 entry (never escapes loaders)."""


# ----------------------------------------------------------------------
# Page-aligned .npy banks.
# ----------------------------------------------------------------------
def write_aligned_npy(
    path: str | Path, array: np.ndarray, align: int = PAGE_ALIGN
) -> tuple[int, int]:
    """Write ``array`` as a spec-compliant ``.npy`` whose data section
    starts at a multiple of ``align`` bytes.  Returns ``(payload_bytes,
    data_offset)``.

    The format's header is free-form ASCII padded with spaces and
    terminated by a newline, so any padding width is valid: ``np.load``
    (mmap or not) reads these files like any other ``.npy``.  The
    returned data offset goes into the manifest, so the hit path can
    map the payload directly without re-parsing the header.
    """
    arr = np.ascontiguousarray(array)
    descr = np.lib.format.dtype_to_descr(arr.dtype)
    header = "{'descr': %r, 'fortran_order': False, 'shape': %r, }" % (
        descr,
        tuple(int(dim) for dim in arr.shape),
    )
    # magic(6) + version(2) + header-length field(2) precede the header.
    prefix = 6 + 2 + 2
    pad = (-(prefix + len(header) + 1)) % align
    header_bytes = (header + " " * pad + "\n").encode("latin1")
    if len(header_bytes) > 0xFFFF:
        raise StoreError(f"npy header too large for version 1.0: {path}")
    with open(path, "wb") as handle:
        handle.write(b"\x93NUMPY\x01\x00")
        handle.write(len(header_bytes).to_bytes(2, "little"))
        handle.write(header_bytes)
        arr.tofile(handle)
    return int(arr.nbytes), prefix + len(header_bytes)


# ----------------------------------------------------------------------
# Entry write path.
# ----------------------------------------------------------------------
def manifest_path(cache_dir: Path, stem: str) -> Path:
    return Path(cache_dir) / f"{stem}{MANIFEST_SUFFIX}"


def bank_dir_name(stem: str, fingerprint: str) -> str:
    return f"{stem}.{fingerprint}{BANK_SUFFIX}"


def store_entry(
    cache_dir: str | Path,
    stem: str,
    *,
    fingerprint: str,
    kind: str,
    meta: dict[str, Any] | None = None,
    arrays: dict[str, np.ndarray] | None = None,
    objects: dict[str, Any] | None = None,
) -> Path:
    """Persist one v5 cache entry; returns the manifest path.

    ``arrays`` become page-aligned ``.npy`` banks (zero-size arrays are
    recorded in the manifest only), ``objects`` become pickle banks for
    small structured payloads (timing/power results).  Writes follow
    the write-then-rename discipline described in the module docstring.
    """
    cache_dir = Path(cache_dir)
    arrays = arrays or {}
    objects = objects or {}
    bank_name = bank_dir_name(stem, fingerprint)
    final_dir = cache_dir / bank_name
    tmp_dir = cache_dir / f"{bank_name}.{os.getpid()}.tmp"
    shutil.rmtree(tmp_dir, ignore_errors=True)
    tmp_dir.mkdir(parents=True)

    array_entries = []
    for name, array in arrays.items():
        entry = {
            "name": name,
            "dtype": np.lib.format.dtype_to_descr(np.asarray(array).dtype),
            "shape": [int(dim) for dim in np.asarray(array).shape],
        }
        if np.asarray(array).size == 0:
            entry["file"] = None
            entry["nbytes"] = 0
        else:
            entry["file"] = f"{name}.npy"
            entry["nbytes"], entry["offset"] = write_aligned_npy(
                tmp_dir / f"{name}.npy", array
            )
        array_entries.append(entry)
    object_entries = []
    for name, payload in objects.items():
        filename = f"{name}.pkl"
        with open(tmp_dir / filename, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        object_entries.append({"name": name, "file": filename})

    if final_dir.exists():
        # Another writer already landed banks for this exact
        # fingerprint; the content is identical by construction.
        shutil.rmtree(tmp_dir, ignore_errors=True)
    else:
        try:
            os.rename(tmp_dir, final_dir)
        except OSError:
            if final_dir.exists():  # lost the rename race — same story
                shutil.rmtree(tmp_dir, ignore_errors=True)
            else:
                raise

    manifest = {
        "layout": CACHE_LAYOUT_VERSION,
        "kind": kind,
        "fingerprint": fingerprint,
        "bank_dir": bank_name,
        "meta": meta or {},
        "arrays": array_entries,
        "objects": object_entries,
    }
    final_manifest = manifest_path(cache_dir, stem)
    tmp_manifest = cache_dir / f"{final_manifest.name}.{os.getpid()}.tmp"
    with open(tmp_manifest, "w") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_manifest, final_manifest)
    return final_manifest


# ----------------------------------------------------------------------
# Entry read path.
# ----------------------------------------------------------------------
@dataclass
class LoadedEntry:
    """One v5 entry opened for reading.

    ``arrays`` are read-only (memory-mapped unless ``mmap=False`` was
    requested, in which case they are private copies still marked
    read-only so the mutation-safety contract holds either way).
    ``bytes_mapped`` / ``bytes_deserialized`` feed the transport
    counters: mapped bytes are *virtual* — the OS pages them in lazily.
    """

    kind: str
    fingerprint: str
    meta: dict[str, Any]
    arrays: dict[str, np.ndarray] = field(repr=False, default_factory=dict)
    objects: dict[str, Any] = field(repr=False, default_factory=dict)
    bytes_mapped: int = 0
    bytes_deserialized: int = 0


def peek_manifest(cache_dir: str | Path, stem: str) -> dict | None:
    """Read an entry's manifest without opening any bank.

    Returns the manifest dict, or ``None`` when absent/damaged/foreign
    layout.  This is the O(1) staleness probe: the fingerprint lives in
    the manifest, so deciding hit-vs-stale never deserializes payloads.
    """
    path = manifest_path(Path(cache_dir), stem)
    try:
        with open(path) as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        return None
    if (
        not isinstance(manifest, dict)
        or manifest.get("layout") != CACHE_LAYOUT_VERSION
        or not isinstance(manifest.get("fingerprint"), str)
    ):
        return None
    return manifest


def load_entry(
    cache_dir: str | Path,
    stem: str,
    expected_fingerprint: str | None = None,
    mmap: bool = True,
) -> tuple[LoadedEntry | None, str]:
    """Open one v5 entry; returns ``(entry, status)``.

    ``status`` is ``"hit"`` (entry returned), ``"absent"`` (no v5
    manifest), ``"stale"`` (fingerprint mismatch — payloads untouched)
    or ``"corrupt"`` (manifest or banks damaged).  Callers recover by
    falling back to the legacy layout or recomputing; nothing raises.
    """
    cache_dir = Path(cache_dir)
    if not manifest_path(cache_dir, stem).exists():
        return None, "absent"
    manifest = peek_manifest(cache_dir, stem)
    if manifest is None:
        return None, "corrupt"
    if (
        expected_fingerprint is not None
        and manifest["fingerprint"] != expected_fingerprint
    ):
        return None, "stale"
    bank_dir = cache_dir / manifest["bank_dir"]
    entry = LoadedEntry(
        kind=manifest.get("kind", ""),
        fingerprint=manifest["fingerprint"],
        meta=manifest.get("meta", {}),
    )
    try:
        for spec in manifest.get("arrays", ()):
            name = spec["name"]
            dtype = np.dtype(spec["dtype"])
            shape = tuple(spec["shape"])
            if spec["file"] is None:
                array = np.empty(shape, dtype=dtype)
            elif mmap and "offset" in spec:
                # Fast path: the manifest records where the payload
                # starts, so the hit maps it directly — one open + one
                # mmap per bank, no ``.npy`` header re-parse (the
                # header still exists for np.load and external tools).
                offset = int(spec["offset"])
                nbytes = int(spec["nbytes"])
                with open(bank_dir / spec["file"], "rb") as handle:
                    buffer = _mmap.mmap(
                        handle.fileno(), 0, access=_mmap.ACCESS_READ
                    )
                if buffer.size() < offset + nbytes:
                    raise StoreError(
                        f"bank {spec['file']} truncated: {buffer.size()} "
                        f"< {offset + nbytes}"
                    )
                array = np.frombuffer(
                    buffer, dtype=dtype, count=int(np.prod(shape)),
                    offset=offset,
                ).reshape(shape)
                entry.bytes_mapped += int(array.nbytes)
            else:
                array = np.load(
                    bank_dir / spec["file"], mmap_mode="r" if mmap else None
                )
                if array.dtype != dtype or array.shape != shape:
                    raise StoreError(
                        f"bank {spec['file']} does not match its manifest "
                        f"schema ({array.dtype}{array.shape} != "
                        f"{dtype}{shape})"
                    )
                if mmap:
                    entry.bytes_mapped += int(array.nbytes)
                else:
                    entry.bytes_deserialized += int(array.nbytes)
            array.flags.writeable = False
            entry.arrays[name] = array
        for spec in manifest.get("objects", ()):
            path = bank_dir / spec["file"]
            entry.bytes_deserialized += path.stat().st_size
            with open(path, "rb") as handle:
                entry.objects[spec["name"]] = pickle.load(handle)
    except Exception:
        return None, "corrupt"
    return entry, "hit"


# ----------------------------------------------------------------------
# Garbage collection and inventory.
# ----------------------------------------------------------------------
@dataclass
class SweepStats:
    """What :func:`sweep_orphans` reclaimed."""

    tmp_files: int = 0
    orphan_bank_dirs: int = 0
    bytes_freed: int = 0


def _tree_bytes(path: Path) -> int:
    if path.is_file():
        try:
            return path.stat().st_size
        except OSError:
            return 0
    total = 0
    for child in path.rglob("*"):
        try:
            if child.is_file():
                total += child.stat().st_size
        except OSError:
            continue
    return total


def sweep_orphans(
    cache_dir: str | Path,
    age_seconds: float = TMP_SWEEP_AGE_SECONDS,
    now: float | None = None,
) -> SweepStats:
    """Reclaim crashed-writer debris and superseded banks.

    Removes, when older than ``age_seconds``:

    * ``*.tmp`` / ``*.tmp.npz`` files (half-written legacy archives,
      pickle sidecars and manifests abandoned before their rename), and
      ``*.tmp`` bank directories;
    * fingerprint-named ``*.v5`` bank directories whose manifest is
      missing or now points at a different fingerprint (an entry
      replacement happened; any reader still mapping the old banks
      keeps its pages via POSIX unlink semantics).

    The age gate keeps a live writer's in-flight temp work and
    banks-renamed-before-manifest windows safe from concurrent sweeps.
    """
    cache_dir = Path(cache_dir)
    stats = SweepStats()
    if not cache_dir.is_dir():
        return stats
    cutoff = (time.time() if now is None else now) - age_seconds
    for child in sorted(cache_dir.iterdir()):
        name = child.name
        try:
            mtime = child.stat().st_mtime
        except OSError:
            continue
        if mtime > cutoff:
            continue
        if name.endswith(".tmp") or name.endswith(".tmp.npz"):
            size = _tree_bytes(child)
            try:
                if child.is_dir():
                    shutil.rmtree(child)
                else:
                    child.unlink()
            except OSError:
                continue
            stats.tmp_files += 1
            stats.bytes_freed += size
            continue
        match = _BANK_DIR_RE.match(name)
        if match is None or not child.is_dir():
            continue
        manifest = peek_manifest(cache_dir, match.group("stem"))
        if manifest is not None and manifest["fingerprint"] == match.group("fp"):
            continue
        size = _tree_bytes(child)
        try:
            shutil.rmtree(child)
        except OSError:
            continue
        stats.orphan_bank_dirs += 1
        stats.bytes_freed += size
    return stats


#: Legacy filename shapes recognized by :func:`scan_cache`.
_LEGACY_RESULTS_RE = re.compile(r"_results_[^.]+\.pkl$")
_LEGACY_CLASSIFIED_RE = re.compile(r"_classified\.pkl$")


def scan_cache(cache_dir: str | Path) -> dict:
    """Inventory a cache directory: per-stage entry counts and bytes.

    Returns a JSON-ready dict: ``stages`` maps a stage label (v5 kinds
    like ``trace``/``ccols``/``pcols``/``results`` and legacy labels
    like ``trace_npz``/``classified_pickle``/``results_pickle``) to
    ``{"entries": n, "bytes": b}``; ``orphans`` counts ``*.tmp`` debris
    and unreferenced bank directories still awaiting a sweep.
    """
    cache_dir = Path(cache_dir)
    stages: dict[str, dict[str, int]] = {}
    orphans = {"tmp_files": 0, "tmp_bytes": 0, "bank_dirs": 0, "bank_bytes": 0}
    total = 0

    def bump(stage: str, entries: int, nbytes: int) -> None:
        slot = stages.setdefault(stage, {"entries": 0, "bytes": 0})
        slot["entries"] += entries
        slot["bytes"] += nbytes

    if not cache_dir.is_dir():
        return {"cache_dir": str(cache_dir), "stages": stages,
                "orphans": orphans, "total_bytes": 0}
    for child in sorted(cache_dir.iterdir()):
        name = child.name
        size = _tree_bytes(child)
        total += size
        if name.endswith(".tmp") or name.endswith(".tmp.npz"):
            orphans["tmp_files"] += 1
            orphans["tmp_bytes"] += size
            continue
        if name.endswith(MANIFEST_SUFFIX):
            stem = name[: -len(MANIFEST_SUFFIX)]
            manifest = peek_manifest(cache_dir, stem)
            kind = manifest.get("kind", "unknown") if manifest else "unknown"
            # The manifest speaks for the whole entry; its banks are
            # accounted to the same stage below.
            bump(kind, 1, size)
            continue
        match = _BANK_DIR_RE.match(name)
        if match is not None and child.is_dir():
            manifest = peek_manifest(cache_dir, match.group("stem"))
            if manifest is None or manifest["fingerprint"] != match.group("fp"):
                orphans["bank_dirs"] += 1
                orphans["bank_bytes"] += size
            else:
                bump(manifest.get("kind", "unknown"), 0, size)
            continue
        if name.endswith(".npz"):
            bump("trace_npz", 1, size)
        elif _LEGACY_CLASSIFIED_RE.search(name):
            bump("classified_pickle", 1, size)
        elif _LEGACY_RESULTS_RE.search(name):
            bump("results_pickle", 1, size)
        elif name.endswith(".pkl"):
            bump("other_pickle", 1, size)
        else:
            bump("other", 1, size)
    return {
        "cache_dir": str(cache_dir),
        "stages": {k: dict(v) for k, v in sorted(stages.items())},
        "orphans": orphans,
        "total_bytes": total,
    }
