"""Encoding-bit algebra for the byte-wise register compressor.

The comparison logic of Figure 3 produces a *prefix* code over the four
byte positions of a 32-bit value, MSB first: the only legal ``enc[3:0]``
patterns are ``0000``, ``1000``, ``1100``, ``1110`` and ``1111``.  We
represent an encoding as the integer prefix length ``n`` (0..4 common
most-significant bytes) and convert to/from the hardware bit pattern at
the edges.

Alongside the four enc bits, each register carries a D bit ("written by
a divergent instruction"; values stored uncompressed, BVR holds the
writer's active mask — Section 4.2) and, when half-register compression
is enabled, a second enc/base pair plus the FS ("full scalar") flag of
Figure 7(c).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompressionError

#: Legal enc[3:0] hardware patterns, indexed by prefix length.
_ENC_PATTERNS = (0b0000, 0b1000, 0b1100, 0b1110, 0b1111)

#: Prefix length meaning "register holds a single scalar value".
SCALAR_PREFIX = 4


def enc_to_bits(prefix_len: int) -> int:
    """Prefix length (0..4) -> the enc[3:0] pattern the hardware stores."""
    if not 0 <= prefix_len <= 4:
        raise CompressionError(f"prefix length must be 0..4, got {prefix_len}")
    return _ENC_PATTERNS[prefix_len]


def bits_to_enc(pattern: int) -> int:
    """enc[3:0] pattern -> prefix length; rejects non-prefix patterns."""
    try:
        return _ENC_PATTERNS.index(pattern)
    except ValueError:
        raise CompressionError(
            f"{pattern:#06b} is not a legal enc pattern (must be a prefix code)"
        ) from None


def is_scalar_encoding(prefix_len: int) -> bool:
    """True when enc says every active lane holds the same 32-bit value."""
    return prefix_len == SCALAR_PREFIX


@dataclass(frozen=True)
class RegisterEncoding:
    """Sidecar state of one vector register: what BVR/EBR/D/FS hold.

    For a non-divergent write (``divergent=False``): ``enc`` is the
    common-prefix length over all lanes and ``base`` is the first lane's
    value (op[0], per Section 3.1).  For a divergent write
    (``divergent=True``): ``enc`` is computed over the *active* lanes
    only, values are stored uncompressed, and ``base`` holds the
    writer's **active mask** (Section 4.2).

    ``enc_lo`` / ``enc_hi`` / ``base_lo`` / ``base_hi`` are the
    half-register pairs (Section 4.3), valid only for non-divergent
    writes; ``full_scalar`` is the FS flag: both halves scalar *and*
    equal.
    """

    enc: int
    base: int
    divergent: bool = False
    enc_lo: int = 0
    enc_hi: int = 0
    base_lo: int = 0
    base_hi: int = 0
    full_scalar: bool = False

    def __post_init__(self) -> None:
        for name, value in (
            ("enc", self.enc),
            ("enc_lo", self.enc_lo),
            ("enc_hi", self.enc_hi),
        ):
            if not 0 <= value <= 4:
                raise CompressionError(f"{name} must be 0..4, got {value}")
        if not 0 <= self.base < 2**64:
            raise CompressionError(f"base/mask out of range: {self.base:#x}")

    @property
    def is_scalar(self) -> bool:
        """Full-register scalar (meaningful for non-divergent writes)."""
        return is_scalar_encoding(self.enc)

    @property
    def stored_data_bytes_per_lane(self) -> int:
        """Low bytes of each lane that actually reach the SRAM arrays."""
        if self.divergent:
            return 4  # divergent writes are stored uncompressed
        return 4 - self.enc

    @staticmethod
    def uncompressed() -> "RegisterEncoding":
        """State of a register before any tracked write."""
        return RegisterEncoding(enc=0, base=0)
