"""Shared-memory fan-out of already-materialized columnar traces.

The v5 cache makes *disk* hits zero-copy (``np.load(mmap_mode="r")``)
— but a parallel :meth:`~repro.experiments.runner.ExperimentRunner.
prefetch` has a second transport opportunity: when the parent has
already materialized a benchmark's :class:`~repro.simt.trace.
ColumnarTrace` in memory, pool workers should not re-read (or worse,
re-execute) it.  This module copies those arrays **once** into a POSIX
``multiprocessing.shared_memory`` segment and hands workers a small
picklable :class:`ShmHandle`; each worker attaches and rebuilds the
columnar trace as read-only views over the shared pages — per-worker
cost is a map, not a copy, regardless of trace size or pool width.

Transport accounting: the parent's one export counts as
``bytes_copied`` (an explicit copy into the segment); each worker's
attach counts as ``bytes_mapped`` (views over shared pages).

Lifecycle rules (they encode real POSIX/CPython behavior):

* The **parent** owns the segments: :class:`ShmExporter` keeps every
  ``SharedMemory`` object alive until :meth:`ShmExporter.close`, which
  closes and unlinks them.  Unlinking while workers still hold maps is
  safe — their pages survive until they detach (same semantics the v5
  bank GC relies on).
* **Workers** must drop every array view before closing their map:
  CPython refuses to close a ``memoryview``-exporting mmap
  (``BufferError``).  :meth:`AdoptedSegment.detach` releases the views,
  runs a collection to clear any stragglers, and swallows the
  ``BufferError`` if a consumer leaked a reference — leaking a map for
  the worker's remaining lifetime beats crashing the task.
* Nobody calls ``resource_tracker.unregister``: under the default
  ``fork`` start method the children share the parent's tracker, so a
  child unregistering would delete the parent's entry and the segment
  would leak if the parent died before ``close``.  The tracker may
  therefore double-unlink at interpreter exit; the parent's own unlink
  already swallows ``FileNotFoundError`` for exactly that reason.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.simt.serialize import _ARRAY_FIELDS
from repro.simt.trace import ColumnarTrace

#: Array offsets inside a segment are page-aligned, mirroring the v5
#: bank layout on disk.
_ALIGN = 4096


@dataclass(frozen=True)
class ShmArraySpec:
    """Where one array lives inside a shared segment."""

    name: str
    dtype: str  # np.lib.format descr string
    shape: tuple[int, ...]
    offset: int
    nbytes: int


@dataclass(frozen=True)
class ShmHandle:
    """Picklable descriptor of one exported columnar trace.

    Everything a worker needs to attach: the POSIX segment name, the
    array schema with offsets, and the trace identity (fingerprint +
    header fields) so the adopting runner can seed its cache state
    exactly as a disk hit would.
    """

    segment: str
    fingerprint: str
    kernel_name: str
    warp_size: int
    arrays: tuple[ShmArraySpec, ...]
    total_bytes: int


class ShmExporter:
    """Parent-side: copy columnar traces into shared segments once.

    Use as a context manager around the pool fan-out; exiting closes
    and unlinks every segment (workers that are still attached keep
    their pages until they detach).
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []

    def export_columnar(
        self, columnar: ColumnarTrace, fingerprint: str
    ) -> ShmHandle:
        """Copy one columnar trace into a fresh shared segment."""
        specs = []
        offset = 0
        for name in _ARRAY_FIELDS:
            array = np.ascontiguousarray(getattr(columnar, name))
            specs.append(
                ShmArraySpec(
                    name=name,
                    dtype=np.lib.format.dtype_to_descr(array.dtype),
                    shape=tuple(int(dim) for dim in array.shape),
                    offset=offset,
                    nbytes=int(array.nbytes),
                )
            )
            offset += -(-array.nbytes // _ALIGN) * _ALIGN
        segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        self._segments.append(segment)
        for spec in specs:
            if spec.nbytes == 0:
                continue
            array = np.ascontiguousarray(getattr(columnar, spec.name))
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=segment.buf,
                offset=spec.offset,
            )
            view[...] = array
            del view  # release the buffer export before any close()
        return ShmHandle(
            segment=segment.name,
            fingerprint=fingerprint,
            kernel_name=columnar.kernel_name,
            warp_size=columnar.warp_size,
            arrays=tuple(specs),
            total_bytes=sum(spec.nbytes for spec in specs),
        )

    def close(self) -> None:
        """Close and unlink every exported segment."""
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # a live local view; unlink still works
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass  # resource tracker (or a sibling) got there first
        self._segments.clear()

    def __enter__(self) -> "ShmExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AdoptedSegment:
    """Worker-side attachment to one exported segment."""

    def __init__(self, handle: ShmHandle):
        self.handle = handle
        self._segment = shared_memory.SharedMemory(name=handle.segment)
        self.arrays: dict[str, np.ndarray] = {}
        for spec in handle.arrays:
            if spec.nbytes == 0:
                array = np.empty(spec.shape, dtype=np.dtype(spec.dtype))
            else:
                array = np.ndarray(
                    spec.shape,
                    dtype=np.dtype(spec.dtype),
                    buffer=self._segment.buf,
                    offset=spec.offset,
                )
            array.flags.writeable = False
            self.arrays[spec.name] = array

    def columnar(self) -> ColumnarTrace:
        """The shared trace as read-only views (no copies)."""
        return ColumnarTrace(
            kernel_name=self.handle.kernel_name,
            warp_size=self.handle.warp_size,
            **{name: self.arrays[name] for name in _ARRAY_FIELDS},
        )

    def detach(self) -> None:
        """Drop the views and close the map (keep the segment linked).

        Never unregisters with the resource tracker — see the module
        docstring for why that would corrupt the parent's bookkeeping
        under ``fork``.
        """
        self.arrays.clear()
        gc.collect()  # clear dropped views so the mmap can close
        try:
            self._segment.close()
        except BufferError:
            # A consumer kept a view alive; leaking this map until
            # process exit is harmless, crashing the task is not.
            pass
