"""Unit tests for warp schedulers."""

import pytest

from repro.config import SchedulerPolicy
from repro.errors import TimingError
from repro.timing.scheduler import WarpScheduler, partition_warps


class TestPartition:
    def test_parity_partition(self):
        schedulers = partition_warps(6, 2, SchedulerPolicy.LRR)
        assert schedulers[0].warp_ids == [0, 2, 4]
        assert schedulers[1].warp_ids == [1, 3, 5]

    def test_single_scheduler(self):
        schedulers = partition_warps(4, 1, SchedulerPolicy.GTO)
        assert schedulers[0].warp_ids == [0, 1, 2, 3]

    def test_zero_schedulers_rejected(self):
        with pytest.raises(TimingError):
            partition_warps(4, 0, SchedulerPolicy.GTO)


class TestGto:
    def test_greedy_sticks_with_last_warp(self):
        scheduler = WarpScheduler([0, 2, 4], SchedulerPolicy.GTO)
        assert scheduler.pick({0, 2, 4}) == 0
        assert scheduler.pick({0, 2, 4}) == 0  # greedy

    def test_falls_back_to_oldest(self):
        scheduler = WarpScheduler([0, 2, 4], SchedulerPolicy.GTO)
        scheduler.pick({0, 2, 4})
        assert scheduler.pick({2, 4}) == 2  # oldest ready

    def test_none_when_nothing_ready(self):
        scheduler = WarpScheduler([0, 2], SchedulerPolicy.GTO)
        assert scheduler.pick(set()) is None

    def test_ignores_foreign_warps(self):
        scheduler = WarpScheduler([0, 2], SchedulerPolicy.GTO)
        assert scheduler.pick({1, 3}) is None


class TestLrr:
    def test_round_robin_rotation(self):
        scheduler = WarpScheduler([0, 1, 2], SchedulerPolicy.LRR)
        picks = [scheduler.pick({0, 1, 2}) for _ in range(4)]
        assert picks == [0, 1, 2, 0]

    def test_skips_unready(self):
        scheduler = WarpScheduler([0, 1, 2], SchedulerPolicy.LRR)
        scheduler.pick({0, 1, 2})  # -> 0
        assert scheduler.pick({2}) == 2
        assert scheduler.pick({0, 1, 2}) == 0
