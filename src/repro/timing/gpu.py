"""End-to-end timing convenience layer.

The evaluation simulates one SM's worth of warps (the paper's per-SM
statistics scale symmetrically to 15 SMs since the proxies are
homogeneous across CTAs).  :func:`simulate_architecture` lowers a
processed trace to timing ops and runs the SM model with the
architecture's extra pipeline latency.
"""

from __future__ import annotations

from repro.config import ArchitectureConfig, GpuConfig
from repro.scalar.architectures import ProcessedEvent
from repro.timing.ops import TimingOp, build_timing_ops, build_timing_ops_columns
from repro.timing.sm import SmSimulator, TimingResult
from repro.timing.sm_event import DEFAULT_SM_ENGINE, create_sm_simulator


def lower_to_timing_ops(
    processed: list[list[ProcessedEvent]],
    arch: ArchitectureConfig,
    config: GpuConfig,
    warp_size: int,
) -> list[list[TimingOp]]:
    """Lower every warp's processed events to timing ops."""
    return [
        build_timing_ops(warp_events, arch, config, warp_size)
        for warp_events in processed
    ]


def simulate_architecture(
    processed: list[list[ProcessedEvent]],
    arch: ArchitectureConfig,
    config: GpuConfig | None = None,
    warp_size: int = 32,
    warps_per_cta: int | None = None,
    sm_engine: str = DEFAULT_SM_ENGINE,
    recorder=None,
) -> TimingResult:
    """Run the SM timing model for one architecture's processed trace.

    ``warps_per_cta`` enables CTA-barrier coordination for kernels that
    use ``bar.sync``; without it each warp is treated as its own CTA.
    ``sm_engine`` selects the SM timing engine (``"event"`` or the
    ``"cycle"`` reference model; they are differentially tested to
    produce bit-identical results).  ``recorder`` (a
    :class:`repro.obs.timeline.FlightRecorder`) opts into per-warp
    lifecycle recording.
    """
    config = config or GpuConfig()
    warp_ops = lower_to_timing_ops(processed, arch, config, warp_size)
    simulator = create_sm_simulator(
        sm_engine,
        warp_ops,
        config,
        extra_latency=arch.extra_pipeline_cycles,
        warps_per_cta=warps_per_cta,
        recorder=recorder,
    )
    return simulator.run()


def lower_to_timing_ops_columns(
    ccols,
    pcols,
    arch: ArchitectureConfig,
    config: GpuConfig,
) -> list[list[TimingOp]]:
    """Lower a columnar classified/processed pair to timing ops."""
    return build_timing_ops_columns(ccols, pcols, arch, config)


def simulate_architecture_columns(
    ccols,
    pcols,
    arch: ArchitectureConfig,
    config: GpuConfig | None = None,
    warps_per_cta: int | None = None,
    sm_engine: str = DEFAULT_SM_ENGINE,
    recorder=None,
) -> TimingResult:
    """Columnar counterpart of :func:`simulate_architecture`.

    The SM model itself is representation-independent; only the
    lowering differs.  Produces the same :class:`TimingResult` as the
    event path for the same stream.
    """
    config = config or GpuConfig()
    warp_ops = build_timing_ops_columns(ccols, pcols, arch, config)
    simulator = create_sm_simulator(
        sm_engine,
        warp_ops,
        config,
        extra_latency=arch.extra_pipeline_cycles,
        warps_per_cta=warps_per_cta,
        recorder=recorder,
    )
    return simulator.run()


def simulate_warp_ops(
    warp_ops: list[list[TimingOp]],
    arch: ArchitectureConfig,
    config: GpuConfig | None = None,
    warps_per_cta: int | None = None,
    sm_engine: str = DEFAULT_SM_ENGINE,
    recorder=None,
) -> TimingResult:
    """Run the SM timing model over pre-lowered per-warp op lists.

    The chunk-streaming pipeline lowers timing ops chunk by chunk
    (:func:`build_timing_ops_columns` is a pure per-event function, so
    fragment lowering is exact) and appends each fragment to its
    warp's accumulated list; this entry point runs the simulation once
    over the fully-assembled lists — both SM engines schedule whole
    warps, so this is the one whole-trace barrier the stream keeps.
    """
    config = config or GpuConfig()
    simulator = create_sm_simulator(
        sm_engine,
        warp_ops,
        config,
        extra_latency=arch.extra_pipeline_cycles,
        warps_per_cta=warps_per_cta,
        recorder=recorder,
    )
    return simulator.run()
