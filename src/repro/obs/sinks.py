"""Pluggable event sinks for the telemetry registry.

A sink receives one dict per finished span (and per explicit
:meth:`~repro.obs.telemetry.Telemetry.event`) as it happens — a live
stream, unlike the pull-style counter/histogram exporters.  Two
implementations:

* :class:`NullSink` — swallows everything (the default when a caller
  wants an enabled registry without an event stream), and
* :class:`JsonlSink` — one JSON object per line, append-friendly and
  trivially greppable; the ``repro profile --events-out`` backend.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Protocol


class Sink(Protocol):
    """What the registry expects of a sink."""

    def emit(self, event: dict) -> None: ...

    def close(self) -> None: ...


class NullSink:
    """Accepts and discards every event."""

    def emit(self, event: dict) -> None:
        return None

    def close(self) -> None:
        return None


class JsonlSink:
    """Streams events as JSON Lines to a path or open handle."""

    def __init__(self, target: str | Path | IO[str]):
        if hasattr(target, "write"):
            self._handle: IO[str] = target  # type: ignore[assignment]
            self._owns_handle = False
        else:
            self._handle = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        self.emitted = 0

    def emit(self, event: dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=True, default=str))
        self._handle.write("\n")
        self.emitted += 1

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()
