"""Regenerate Figure 9: instructions eligible for scalar execution.

Paper: ALU-scalar covers 22% on average; adding SFU/memory, half-warp
and divergent scalar brings G-Scalar to 40% — nearly double.
"""

from repro.experiments import fig9

from conftest import run_once


def bench_fig9(benchmark, shared_runner):
    data = run_once(benchmark, fig9.compute, shared_runner)
    print()
    print(fig9.render(data))

    # The headline: G-Scalar roughly doubles eligibility over ALU-scalar.
    assert 0.15 < data.average_alu_scalar < 0.35
    assert data.average_total > 1.45 * data.average_alu_scalar
    assert 0.30 < data.average_total < 0.55

    by_abbr = {row.abbr: row for row in data.rows}
    # §5.2: supporting divergent scalar doubles LBM's eligible count.
    lbm = by_abbr["LBM"]
    without_divergent = lbm.alu_scalar + lbm.sfu_mem_scalar + lbm.half_scalar
    assert lbm.total_eligible > 1.8 * without_divergent
    # BP has the largest half-warp population (paper: 12%).
    assert by_abbr["BP"].half_scalar == max(r.half_scalar for r in data.rows)
