"""``lbm`` (LBM) proxy.

Signature reproduced: the paper's flagship divergent-scalar benchmark —
~50% of executed instructions divergent (§4.2) and ~30% of *total*
instructions divergent-scalar (§5.2: "supporting divergent scalar
instructions can double the number of instructions eligible for scalar
execution" for LBM).  The collision operator runs inside a cell-type
branch that almost every warp diverges on, and its long chain operates
on the shared relaxation constants (omega and the lattice weights), so
mixed warps turn the whole chain into divergent-scalar instructions.
Also memory-intensive: it streams several distribution arrays per cell,
so the efficiency gain stays below 20% despite the scalar population
(§5.3).
"""

from __future__ import annotations

import numpy as np

from repro.isa import KernelBuilder
from repro.simt import LaunchConfig, MemoryImage
from repro.workloads import datagen
from repro.workloads.patterns import (
    FLAGS_BASE,
    INPUT_A,
    INPUT_B,
    INPUT_C,
    INPUT_D,
    OUTPUT_A,
    OUTPUT_B,
    PARAMS_BASE,
    load_broadcast,
    load_thread_flag,
    thread_element_addr,
)
from repro.workloads.registry import BuiltWorkload, ScaleConfig

_SEED = 909


def build(scale: ScaleConfig) -> BuiltWorkload:
    """Build the LBM proxy at the given scale."""
    b = KernelBuilder("lbm")
    tid = b.tid()
    omega = load_broadcast(b, PARAMS_BASE)
    weight_center = load_broadcast(b, PARAMS_BASE + 4)
    weight_axis = load_broadcast(b, PARAMS_BASE + 8)
    flag = load_thread_flag(b, tid)
    is_fluid = b.setne(flag, 0)

    with b.for_range(0, scale.inner_iterations) as _step:
        # Stream phase: heavy memory traffic on distribution arrays.
        f0 = b.ld_global(thread_element_addr(b, tid, INPUT_A))
        f1 = b.ld_global(thread_element_addr(b, tid, INPUT_B))
        f2 = b.ld_global(thread_element_addr(b, tid, INPUT_C))
        f3 = b.ld_global(thread_element_addr(b, tid, INPUT_D))
        density = b.fadd(b.fadd(f0, f1), b.fadd(f2, f3))
        with b.if_(is_fluid) as branch:
            # Collision: a long chain over the shared lattice constants.
            # In a mixed warp every one of these is divergent-scalar.
            tau = b.rcp(omega)  # SFU, divergent scalar
            eq_center = b.fmul(weight_center, tau)
            eq_axis = b.fmul(weight_axis, tau)
            relax = b.fsub(b.fimm(1.0), omega)
            gain = b.fmul(relax, eq_center)
            bias = b.fadd(gain, eq_axis)
            half_bias = b.fmul(bias, b.fimm(0.5))
            spread = b.fsub(bias, half_bias)
            norm = b.fmax(spread, eq_axis)
            drift = b.fmul(norm, relax)
            settle = b.fadd(drift, eq_center)
            # Apply to the per-thread distributions (divergent vector).
            f0 = b.ffma(f0, relax, norm, dst=f0)
            f1 = b.ffma(f1, relax, spread, dst=f1)
            f2 = b.ffma(f2, relax, settle, dst=f2)
            f3 = b.ffma(f3, relax, gain, dst=f3)
            with branch.else_():
                # Bounce-back boundary: swap-and-scale, shared constant.
                reflect = b.fmul(weight_axis, b.fimm(2.0))
                f2 = b.fmul(f2, reflect, dst=f2)
        b.st_global(thread_element_addr(b, tid, OUTPUT_A), f0)
        b.st_global(thread_element_addr(b, tid, OUTPUT_B), f1)
        b.st_global(b.iadd(thread_element_addr(b, tid, OUTPUT_B), 0x40000), density)

    kernel = b.finish()

    total_threads = scale.grid_dim * scale.cta_dim
    memory = MemoryImage()
    for base, seed_offset in ((INPUT_A, 0), (INPUT_B, 1), (INPUT_C, 2), (INPUT_D, 3)):
        memory.bind_array(
            base, datagen.narrow_floats(total_threads, 0.1, 0.004, _SEED + seed_offset)
        )
    memory.bind_array(
        PARAMS_BASE, np.array([1.85, 0.4444, 0.1111], dtype=np.float32)
    )
    memory.bind_array(
        FLAGS_BASE,
        datagen.boundary_mask_pattern(total_threads, 0.95, _SEED + 4),
    )
    return BuiltWorkload(
        kernel=kernel,
        launch=LaunchConfig(grid_dim=scale.grid_dim, cta_dim=scale.cta_dim),
        memory=memory,
        description="lattice-Boltzmann stream/collide with divergent scalar collision",
    )
