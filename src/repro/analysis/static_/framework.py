"""The lint pass manager: ordered passes over a shared analysis context.

A :class:`LintPass` inspects one kernel and returns diagnostics; the
:class:`PassManager` runs an ordered list of passes, sharing one
:class:`AnalysisContext` so expensive CFG analyses (post-dominators,
liveness, branch regions) are computed at most once per kernel however
many passes consume them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import cached_property

from repro.isa.kernel import Kernel, immediate_postdominators
from repro.isa.liveness import (
    BlockLiveness,
    BranchRegion,
    block_liveness,
    branch_region_members,
)

from repro.analysis.static_.diagnostics import Diagnostic, LintReport


class AnalysisContext:
    """One kernel plus lazily-computed, shared CFG analyses."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel

    @cached_property
    def ipdom(self) -> dict[int, int]:
        return immediate_postdominators(self.kernel)

    @cached_property
    def liveness(self) -> BlockLiveness:
        return block_liveness(self.kernel)

    @cached_property
    def regions(self) -> list[tuple[BranchRegion, frozenset[int]]]:
        return branch_region_members(self.kernel)

    @cached_property
    def predecessors(self) -> dict[int, list[int]]:
        return self.kernel.predecessors()


class LintPass(ABC):
    """One analysis pass; stateless between kernels."""

    #: Short machine name, stable across releases.
    name: str = "unnamed"

    @abstractmethod
    def run(self, ctx: AnalysisContext) -> list[Diagnostic]:
        """Analyze the context's kernel and return findings."""


class PassManager:
    """Runs an ordered pass pipeline over kernels."""

    def __init__(self, passes: list[LintPass]):
        self.passes = list(passes)

    def run(self, kernel: Kernel) -> LintReport:
        """Lint one kernel with every registered pass, in order."""
        ctx = AnalysisContext(kernel)
        report = LintReport(kernel=kernel.name)
        for lint_pass in self.passes:
            report.extend(lint_pass.run(ctx))
        return report


def default_passes(max_registers: int = 64) -> list[LintPass]:
    """The standard pipeline, in dependency-friendly order."""
    from repro.analysis.static_.cfg import CfgStructurePass
    from repro.analysis.static_.deadwrite import DeadWritePass
    from repro.analysis.static_.pressure import RegisterPressurePass
    from repro.analysis.static_.uninit import UninitializedReadPass
    from repro.analysis.static_.uniformity import StaticScalarizationPass
    from repro.analysis.static_.widths import WidthAnalysisPass

    return [
        CfgStructurePass(),
        UninitializedReadPass(),
        DeadWritePass(),
        RegisterPressurePass(max_registers=max_registers),
        StaticScalarizationPass(),
        WidthAnalysisPass(),
    ]


def default_manager(max_registers: int = 64) -> PassManager:
    """A pass manager loaded with :func:`default_passes`."""
    return PassManager(default_passes(max_registers=max_registers))


def lint_kernel(kernel: Kernel, max_registers: int = 64) -> LintReport:
    """Lint one kernel with the default pipeline."""
    return default_manager(max_registers=max_registers).run(kernel)
